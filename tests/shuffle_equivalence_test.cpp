// Shuffle-strategy equivalence property (TEST_P): the sort shuffle is the
// oracle for the hash group-by. For a grid of (k, num_workers), the whole
// six-operation pipeline must produce bit-identical assemblies — same
// contig records, same QUAST metrics — under
//   * ShuffleStrategy::kSort vs ShuffleStrategy::kHash, and
//   * num_threads 1 vs 4 (hash group-by output is thread-count invariant),
// exercising every MapReduce call site (DBG construction phase (ii), both
// contig-merging jobs, bubble filtering) plus their combiners.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/assembler.h"
#include "quality/quast.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

namespace ppa {
namespace {

struct GridPoint {
  int k;
  uint32_t num_workers;
};

class ShuffleEquivalence : public ::testing::TestWithParam<GridPoint> {};

/// Canonical full-fidelity view of an assembly: every contig field, sorted.
std::vector<std::tuple<uint64_t, std::string, uint32_t, bool>> Canon(
    const AssemblyResult& result) {
  std::vector<std::tuple<uint64_t, std::string, uint32_t, bool>> out;
  for (const ContigRecord& c : result.contigs) {
    out.emplace_back(c.id, c.seq.ToString(), c.coverage, c.circular);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST_P(ShuffleEquivalence, PipelineOutputsAreBitIdentical) {
  const GridPoint point = GetParam();

  GenomeConfig gconfig;
  gconfig.length = 8000;
  gconfig.repeat_families = 2;
  gconfig.repeat_length = 120;
  gconfig.repeat_copies = 3;
  gconfig.seed = 4000 + static_cast<uint64_t>(point.k);
  PackedSequence genome = GenerateGenome(gconfig);

  ReadSimConfig rconfig;
  rconfig.read_length = 70;
  rconfig.coverage = 35;
  rconfig.error_rate = 0.005;  // bubbles + tips, so all call sites do work
  rconfig.seed = 99;
  std::vector<Read> reads = SimulateReads(genome, rconfig);

  AssemblerOptions options;
  options.k = point.k;
  options.coverage_threshold = 2;
  options.tip_length_threshold = 60;
  options.num_workers = point.num_workers;

  std::vector<AssemblyResult> results;
  for (ShuffleStrategy strategy :
       {ShuffleStrategy::kSort, ShuffleStrategy::kHash}) {
    for (unsigned threads : {1u, 4u}) {
      options.shuffle_strategy = strategy;
      options.num_threads = threads;
      results.push_back(Assembler(options).Assemble(reads));
      ASSERT_GT(results.back().contigs.size(), 0u);
    }
  }

  const auto reference = Canon(results[0]);  // sort, 1 thread: the oracle
  QuastConfig quast_config;
  const QuastReport expected =
      EvaluateAssembly(results[0].ContigStrings(), &genome, quast_config);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(Canon(results[i]), reference) << "variant " << i;
    const QuastReport report =
        EvaluateAssembly(results[i].ContigStrings(), &genome, quast_config);
    EXPECT_EQ(report.num_contigs, expected.num_contigs);
    EXPECT_EQ(report.total_length, expected.total_length);
    EXPECT_EQ(report.n50, expected.n50);
    EXPECT_EQ(report.largest_contig, expected.largest_contig);
    EXPECT_EQ(report.misassemblies, expected.misassemblies);
    EXPECT_DOUBLE_EQ(report.genome_fraction, expected.genome_fraction);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShuffleEquivalence,
    ::testing::Values(GridPoint{15, 1}, GridPoint{15, 4}, GridPoint{15, 16},
                      GridPoint{21, 1}, GridPoint{21, 4}, GridPoint{21, 16},
                      GridPoint{31, 1}, GridPoint{31, 4}, GridPoint{31, 16}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return "k" + std::to_string(info.param.k) + "_w" +
             std::to_string(info.param.num_workers);
    });

}  // namespace
}  // namespace ppa
