// Tests for the simplified S-V connected components algorithm, including a
// property sweep against a union-find oracle and the O(log n) round bound.
#include "core/sv.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/random.h"

namespace ppa {
namespace {

/// Union-find oracle.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

std::vector<SvInput> FromEdges(size_t n,
                               const std::vector<std::pair<size_t, size_t>>&
                                   edges,
                               const std::vector<uint64_t>& ids) {
  std::vector<SvInput> inputs(n);
  for (size_t i = 0; i < n; ++i) inputs[i].id = ids[i];
  for (auto [a, b] : edges) {
    inputs[a].neighbors.push_back(ids[b]);
    inputs[b].neighbors.push_back(ids[a]);
  }
  return inputs;
}

void CheckAgainstOracle(size_t n,
                        const std::vector<std::pair<size_t, size_t>>& edges,
                        const std::vector<uint64_t>& ids) {
  SvResult result = RunSimplifiedSv(FromEdges(n, edges, ids), 4, 2);
  Dsu dsu(n);
  for (auto [a, b] : edges) dsu.Union(a, b);
  // Oracle: smallest id in each component.
  std::vector<uint64_t> expected(n, UINT64_MAX);
  for (size_t i = 0; i < n; ++i) {
    size_t root = dsu.Find(i);
    expected[root] = std::min(expected[root], ids[i]);
  }
  ASSERT_EQ(result.component.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.component.at(ids[i]), expected[dsu.Find(i)])
        << "vertex " << ids[i];
  }
}

TEST(SvTest, PathGraph) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i + 1 < 50; ++i) edges.emplace_back(i, i + 1);
  std::vector<uint64_t> ids(50);
  std::iota(ids.begin(), ids.end(), 100);
  CheckAgainstOracle(50, edges, ids);
}

TEST(SvTest, CycleGraph) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < 64; ++i) edges.emplace_back(i, (i + 1) % 64);
  std::vector<uint64_t> ids(64);
  std::iota(ids.begin(), ids.end(), 5);
  CheckAgainstOracle(64, edges, ids);
}

TEST(SvTest, StarGraph) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 1; i < 40; ++i) edges.emplace_back(0, i);
  std::vector<uint64_t> ids(40);
  for (size_t i = 0; i < 40; ++i) ids[i] = 1000 - i;  // Center has max id.
  CheckAgainstOracle(40, edges, ids);
}

TEST(SvTest, IsolatedVertices) {
  std::vector<uint64_t> ids = {7, 13, 22};
  CheckAgainstOracle(3, {}, ids);
}

TEST(SvTest, TwoCycleAndSelfLoopTolerance) {
  // Multi-edges between two vertices and a self-loop.
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {0, 1}, {2, 2}};
  std::vector<uint64_t> ids = {30, 10, 20};
  CheckAgainstOracle(3, edges, ids);
}

// Property sweep: random graphs of varying size/density vs the oracle.
class SvRandomTest : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(SvRandomTest, MatchesUnionFind) {
  auto [n, density] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 977) + static_cast<uint64_t>(density * 100));
  std::vector<std::pair<size_t, size_t>> edges;
  auto num_edges = static_cast<size_t>(density * n);
  for (size_t e = 0; e < num_edges; ++e) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a != b) edges.emplace_back(a, b);
  }
  std::vector<uint64_t> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = Mix64(i) >> 8;  // Scrambled ids.
  CheckAgainstOracle(n, edges, ids);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SvRandomTest,
    ::testing::Combine(::testing::Values(10, 100, 500, 2000),
                       ::testing::Values(0.3, 0.8, 1.5, 3.0)));

TEST(SvTest, LogarithmicRoundBound) {
  // A long path is the worst case; rounds must stay O(log n).
  const size_t n = 4096;
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  std::vector<uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 1);
  SvResult result = RunSimplifiedSv(FromEdges(n, edges, ids), 8, 2);
  // log2(4096) = 12; allow a small constant factor.
  EXPECT_LE(result.rounds, 40u);
  EXPECT_EQ(result.component.at(ids[n - 1]), 1u);
}

}  // namespace
}  // namespace ppa
