// Tests for the lock-free bounded ring (util/mpsc_ring.h) and its
// integration into CounterSession. The standalone properties: per-producer
// FIFO order, exact capacity (N pushes fit, the N+1st is refused until a
// pop), move-only payloads, and no payload retained by the ring after a
// pop. The stress tests run real producer/consumer threads and are in the
// TSan CI job — the acquire/release protocol is the thing under test.
#include "util/mpsc_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dbg/kmer_counter.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"
#include "spill/spill.h"

namespace ppa {
namespace {

TEST(MpscRingTest, FifoOrderSingleThread) {
  MpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(int{i}));
  EXPECT_FALSE(ring.Empty());
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, FullAtExactlyCapacityAndValueUntouchedOnRefusal) {
  MpscRing<std::string> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(std::to_string(i)));
  }
  EXPECT_TRUE(ring.Full());
  std::string refused = "keep-me";
  EXPECT_FALSE(ring.TryPush(std::move(refused)));
  EXPECT_EQ(refused, "keep-me");  // failed push must not consume the value
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "0");
  EXPECT_FALSE(ring.Full());
  EXPECT_TRUE(ring.TryPush(std::move(refused)));
  // Wrap-around several laps: order survives the index masking.
  for (int lap = 0; lap < 25; ++lap) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_TRUE(ring.TryPush(std::string(out)));
  }
}

TEST(MpscRingTest, MoveOnlyPayloadAndNoRetentionAfterPop) {
  MpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 41);

  // The ring must drop its reference on pop, not a full lap later — chunk
  // payloads own large heap buffers.
  MpscRing<std::shared_ptr<int>> shared_ring(4);
  auto tracked = std::make_shared<int>(7);
  EXPECT_TRUE(shared_ring.TryPush(std::shared_ptr<int>(tracked)));
  EXPECT_EQ(tracked.use_count(), 2);
  std::shared_ptr<int> popped;
  ASSERT_TRUE(shared_ring.TryPop(&popped));
  EXPECT_EQ(tracked.use_count(), 2);  // ours + popped; none left in the ring
}

// Multi-producer / single-consumer stress: every producer's stream arrives
// complete and in that producer's order, under sustained full-queue
// backpressure (capacity far below the item count). Run under TSan in CI.
TEST(MpscRingTest, MultiProducerStressPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  MpscRing<uint64_t> ring(16);  // tiny: forces constant full/empty races
  std::atomic<int> live_producers{kProducers};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t tagged = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(std::move(tagged))) {
          std::this_thread::yield();
        }
      }
      live_producers.fetch_sub(1, std::memory_order_release);
    });
  }

  std::vector<uint64_t> next(kProducers, 0);
  uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t value;
    if (!ring.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(value >> 32);
    const uint64_t seq = value & 0xFFFFFFFFu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(live_producers.load(), 0);
  EXPECT_TRUE(ring.Empty());
}

// ---------------------------------------------------------------------------
// CounterSession integration
// ---------------------------------------------------------------------------

using Pair = std::pair<uint64_t, uint32_t>;

std::vector<std::vector<Pair>> SortedPartitions(const MerCounts& counts) {
  std::vector<std::vector<Pair>> out;
  out.reserve(counts.size());
  for (const auto& part : counts) {
    std::vector<Pair> sorted(part.begin(), part.end());
    std::sort(sorted.begin(), sorted.end());
    out.push_back(std::move(sorted));
  }
  return out;
}

std::vector<Read> SimulatedReads(uint64_t genome_length, double coverage,
                                 uint64_t seed) {
  GenomeConfig genome_config;
  genome_config.length = genome_length;
  genome_config.seed = seed;
  PackedSequence reference = GenerateGenome(genome_config);
  ReadSimConfig read_config;
  read_config.coverage = coverage;
  read_config.error_rate = 0.01;
  read_config.seed = seed + 1;
  return SimulateReads(reference, read_config);
}

MerCounts RunSession(const std::vector<Read>& reads,
                     const KmerCountConfig& config, uint64_t max_queued_bytes,
                     unsigned add_threads, KmerCountStats* stats) {
  CounterSession session(config, max_queued_bytes);
  if (add_threads <= 1) {
    session.AddBatch(reads);
  } else {
    std::vector<std::thread> adders;
    const size_t per = (reads.size() + add_threads - 1) / add_threads;
    for (unsigned t = 0; t < add_threads; ++t) {
      const size_t begin = std::min(reads.size(), t * per);
      const size_t end = std::min(reads.size(), begin + per);
      adders.emplace_back([&, begin, end] {
        session.AddBatch(reads.data() + begin, end - begin);
      });
    }
    for (auto& t : adders) t.join();
  }
  return session.Finish(stats);
}

// Ring-mode sessions under a tiny byte bound (constant backpressure, spins
// and parks) still produce bit-identical counts to the serial reference,
// from concurrent AddBatch callers, under both encodings. TSan covers the
// EnqueueRing / DrainOwnedRings protocol here.
TEST(MpscRingTest, SessionWithRingsMatchesSerialUnderBackpressure) {
  std::vector<Read> reads = SimulatedReads(12000, 8.0, 31);
  reads.push_back({"n_runs", "ACGTACGTNNNNNNNNNNACGTACGATCGATTACA", ""});
  reads.push_back({"poly_a", std::string(200, 'A'), ""});
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 4;
  config.num_threads = 4;
  const auto expected =
      SortedPartitions(CountCanonicalMersSerial(reads, config));
  for (Pass1Encoding enc : {Pass1Encoding::kRaw, Pass1Encoding::kSuperkmer}) {
    config.pass1_encoding = enc;
    config.queue_impl = QueueImpl::kRings;
    KmerCountStats stats;
    // 1 byte rounds up to the minimum admissible bound: every chunk fights
    // the byte-budget CAS and the ring capacity at once.
    const auto actual = SortedPartitions(
        RunSession(reads, config, /*max_queued_bytes=*/1, /*add_threads=*/3,
                   &stats));
    EXPECT_EQ(actual, expected) << Pass1EncodingName(enc);
    EXPECT_EQ(stats.queue_impl, QueueImpl::kRings);
    EXPECT_LE(stats.peak_queued_bytes, stats.queue_bound_bytes);
    // Per-shard ledgers are consumer-side in ring mode; they must still sum
    // to the totals exactly.
    uint64_t windows = 0;
    for (uint64_t w : stats.shard_windows) windows += w;
    EXPECT_EQ(windows, stats.total_windows);
  }
}

// The two queue implementations are interchangeable: same counts, and the
// stats report which one actually ran.
TEST(MpscRingTest, MutexAndRingSessionsAgreeAndReportQueueImpl) {
  std::vector<Read> reads = SimulatedReads(8000, 6.0, 17);
  KmerCountConfig config;
  config.mer_length = 15;
  config.num_workers = 4;
  config.num_threads = 2;

  config.queue_impl = QueueImpl::kRings;
  KmerCountStats ring_stats;
  const auto with_rings =
      SortedPartitions(RunSession(reads, config, 0, 2, &ring_stats));
  EXPECT_EQ(ring_stats.queue_impl, QueueImpl::kRings);

  config.queue_impl = QueueImpl::kMutex;
  KmerCountStats mutex_stats;
  const auto with_mutex =
      SortedPartitions(RunSession(reads, config, 0, 2, &mutex_stats));
  EXPECT_EQ(mutex_stats.queue_impl, QueueImpl::kMutex);
  EXPECT_EQ(mutex_stats.queue_spin_parks, 0u);

  EXPECT_EQ(with_rings, with_mutex);
  EXPECT_EQ(ring_stats.total_windows, mutex_stats.total_windows);
}

// Spilling sessions must fall back to the mutex queues (their admission
// decisions need the session-wide view) even when rings are requested —
// and still count correctly.
TEST(MpscRingTest, SpillSessionForcesMutexQueues) {
  std::vector<Read> reads = SimulatedReads(8000, 6.0, 23);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 4;
  config.num_threads = 2;
  config.queue_impl = QueueImpl::kRings;  // must be overridden
  const auto expected =
      SortedPartitions(CountCanonicalMersSerial(reads, config));
  auto spill = MakeSpillContext(SpillMode::kAlways, "", 1 << 20);
  config.spill = spill.get();
  KmerCountStats stats;
  const auto actual = SortedPartitions(RunSession(reads, config, 0, 2, &stats));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(stats.queue_impl, QueueImpl::kMutex);
  EXPECT_GT(stats.spilled_chunks, 0u);
}

}  // namespace
}  // namespace ppa
