// Tests for the distributed shard-worker subsystem (net/): wire framing
// strictness (every mutated byte of a valid frame stream is rejected with a
// diagnostic, never misread), endpoint parsing, the in-process worker
// server, and the headline property — distributed counting over a fleet of
// workers is bit-identical to the in-process counter across a
// k x shards x workers grid, including under injected faults: a worker
// dying mid-stream is recovered by reassigning its shard leases and
// replaying the chunk journal, and a fleet that dies entirely degrades to
// local counting — in every case with bit-identical output, never a hang.
#include "net/wire.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dbg/kmer_counter.h"
#include "net/coordinator.h"
#include "net/faultinject.h"
#include "net/journal.h"
#include "net/retry.h"
#include "net/worker.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"
#include "util/json.h"
#include "util/timer.h"
#include "util/varint.h"

namespace ppa {
namespace {

using net::Endpoint;
using net::Frame;
using net::FrameConn;
using net::MsgType;
using net::ShardWorkerServer;
using net::WorkerOptions;

using Pair = std::pair<uint64_t, uint32_t>;

// ---------------------------------------------------------------------------
// Endpoint parsing.
// ---------------------------------------------------------------------------

TEST(EndpointTest, ParsesUnixHostPortAndBarePort) {
  Endpoint e;
  std::string error;
  ASSERT_TRUE(net::ParseEndpoint("unix:/tmp/w.sock", &e, &error)) << error;
  EXPECT_TRUE(e.is_unix);
  EXPECT_EQ(e.path, "/tmp/w.sock");

  ASSERT_TRUE(net::ParseEndpoint("example.org:9000", &e, &error)) << error;
  EXPECT_FALSE(e.is_unix);
  EXPECT_EQ(e.host, "example.org");
  EXPECT_EQ(e.port, 9000);

  ASSERT_TRUE(net::ParseEndpoint("127.0.0.1:80", &e, &error)) << error;
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 80);

  ASSERT_TRUE(net::ParseEndpoint("4567", &e, &error)) << error;
  EXPECT_FALSE(e.is_unix);
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 4567);
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "unix:", "host:", ":123", "host:99999",
                          "host:0x50", "not a port", "a:b:c:d:"}) {
    Endpoint e;
    std::string error;
    EXPECT_FALSE(net::ParseEndpoint(bad, &e, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(EndpointTest, SplitDropsEmptyItems) {
  std::vector<std::string> parts =
      net::SplitEndpoints(",unix:/a.sock,, 9000 ,");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "unix:/a.sock");
  EXPECT_EQ(parts[1], "9000");
}

// ---------------------------------------------------------------------------
// Frame transport over a socketpair.
// ---------------------------------------------------------------------------

struct ConnPair {
  std::unique_ptr<FrameConn> a;
  std::unique_ptr<FrameConn> b;
  ConnPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<FrameConn>(fds[0]);
    b = std::make_unique<FrameConn>(fds[1]);
  }
};

TEST(FrameConnTest, RoundTripsFramesAndCleanEof) {
  ConnPair pair;
  std::string error;
  ASSERT_TRUE(pair.a->SendMagic(&error)) << error;
  ASSERT_TRUE(pair.b->ExpectMagic(&error)) << error;

  std::vector<std::vector<uint8_t>> bodies;
  bodies.push_back({});                          // empty body (type only)
  bodies.push_back({0x42});
  bodies.push_back(std::vector<uint8_t>(200, 0xAB));
  bodies.push_back(std::vector<uint8_t>(1 << 17, 0x5C));  // crosses buffers
  for (const auto& body : bodies) {
    ASSERT_TRUE(pair.a->Send(MsgType::kStoreRecord, body, &error)) << error;
  }
  pair.a->Close();
  for (const auto& body : bodies) {
    Frame frame;
    ASSERT_EQ(pair.b->Recv(&frame, &error), FrameConn::RecvResult::kOk)
        << error;
    EXPECT_EQ(frame.type, MsgType::kStoreRecord);
    EXPECT_EQ(frame.body, body);
  }
  Frame frame;
  EXPECT_EQ(pair.b->Recv(&frame, &error), FrameConn::RecvResult::kEof);
}

TEST(FrameConnTest, WrongMagicIsRejected) {
  ConnPair pair;
  const char junk[8] = {'P', 'P', 'A', 'F', 'I', 'L', 'E', '1'};
  ASSERT_EQ(write(pair.a->fd(), junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  std::string error;
  EXPECT_FALSE(pair.b->ExpectMagic(&error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

// Builds the exact byte stream Send() would produce for one frame.
std::vector<uint8_t> RawFrame(MsgType type,
                              const std::vector<uint8_t>& body) {
  ConnPair pair;
  std::string error;
  EXPECT_TRUE(pair.a->Send(type, body, &error)) << error;
  pair.a->Close();
  std::vector<uint8_t> raw;
  uint8_t buf[4096];
  ssize_t n;
  while ((n = read(pair.b->fd(), buf, sizeof(buf))) > 0) {
    raw.insert(raw.end(), buf, buf + n);
  }
  return raw;
}

// Feeds raw bytes (no magic) to a fresh FrameConn and decodes one frame.
FrameConn::RecvResult DecodeRaw(const std::vector<uint8_t>& raw, Frame* frame,
                                std::string* error) {
  ConnPair pair;
  size_t off = 0;
  while (off < raw.size()) {
    ssize_t n = write(pair.a->fd(), raw.data() + off, raw.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  pair.a->Close();
  return pair.b->Recv(frame, error);
}

// Every single-bit flip of a valid frame stream must be rejected (CRC-32
// catches all single-bit errors in the covered region; a flipped length
// varint misframes and fails the CRC or truncates). None may decode as kOk.
TEST(FrameConnTest, EverySingleBitFlipIsRejected) {
  const std::vector<uint8_t> body = {1, 2, 3, 4, 5, 6, 7, 8, 0xFF, 0x00};
  const std::vector<uint8_t> good = RawFrame(MsgType::kCounterChunk, body);
  {
    Frame frame;
    std::string error;
    ASSERT_EQ(DecodeRaw(good, &frame, &error), FrameConn::RecvResult::kOk);
    ASSERT_EQ(frame.body, body);
  }
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = good;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      Frame frame;
      std::string error;
      FrameConn::RecvResult r = DecodeRaw(mutated, &frame, &error);
      EXPECT_NE(r, FrameConn::RecvResult::kOk)
          << "byte " << i << " bit " << bit << " decoded as a valid frame";
      if (r == FrameConn::RecvResult::kError) {
        EXPECT_FALSE(error.empty()) << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(FrameConnTest, TruncationMidFrameIsAnErrorNotEof) {
  const std::vector<uint8_t> good =
      RawFrame(MsgType::kStoreAppend, std::vector<uint8_t>(64, 0x33));
  for (size_t keep : {size_t{1}, good.size() / 2, good.size() - 1}) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + keep);
    Frame frame;
    std::string error;
    EXPECT_EQ(DecodeRaw(cut, &frame, &error), FrameConn::RecvResult::kError)
        << "kept " << keep;
    EXPECT_FALSE(error.empty());
  }
}

TEST(FrameConnTest, OversizedAndOverflowingLengthsAreRejected) {
  // Length past the frame cap.
  std::vector<uint8_t> oversized;
  PutVarint64(&oversized, net::kMaxFramePayload + 1);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeRaw(oversized, &frame, &error),
            FrameConn::RecvResult::kError);
  EXPECT_FALSE(error.empty());

  // A 10-byte varint whose 10th byte has payload bits beyond bit 63 — the
  // encoding of a >= 2^64 length. Must fail, not wrap (the satellite fix).
  std::vector<uint8_t> overflow(9, 0xFF);
  overflow.push_back(0x02);
  error.clear();
  EXPECT_EQ(DecodeRaw(overflow, &frame, &error),
            FrameConn::RecvResult::kError);
  EXPECT_FALSE(error.empty());

  // An 11-byte (overlong) varint.
  std::vector<uint8_t> overlong(10, 0x80);
  overlong.push_back(0x01);
  error.clear();
  EXPECT_EQ(DecodeRaw(overlong, &frame, &error),
            FrameConn::RecvResult::kError);

  // A zero-length frame has no type byte.
  std::vector<uint8_t> empty_frame = {0x00};
  error.clear();
  EXPECT_EQ(DecodeRaw(empty_frame, &frame, &error),
            FrameConn::RecvResult::kError);
}

// ---------------------------------------------------------------------------
// In-process worker fleet: servers on unix sockets + a NetContext client.
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "ppa-net-test-XXXXXX").string();
  char* made = mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

/// N in-process ShardWorkerServers on unix sockets plus the NetContext
/// connected to them. The context must die before the servers stop.
/// `plans` (when non-empty, one entry per worker) injects a deterministic
/// fault script into each server.
struct Fleet {
  std::string dir;
  std::vector<std::unique_ptr<ShardWorkerServer>> servers;
  std::unique_ptr<NetContext> context;

  explicit Fleet(uint32_t n, uint64_t fail_after_frames = 0,
                 uint64_t window_bytes = 1 << 20,
                 std::vector<net::FaultPlan> plans = {},
                 int io_timeout_ms = 20000) {
    dir = MakeTempDir();
    std::string endpoints;
    for (uint32_t w = 0; w < n; ++w) {
      WorkerOptions options;
      options.listen = "unix:" + dir + "/w" + std::to_string(w) + ".sock";
      options.fail_after_frames = fail_after_frames;
      if (!plans.empty()) options.fault_plan = plans[w];
      servers.push_back(std::make_unique<ShardWorkerServer>(options));
      std::string error;
      EXPECT_TRUE(servers.back()->Start(&error)) << error;
      if (!endpoints.empty()) endpoints += ',';
      endpoints += options.listen;
    }
    NetConfig config;
    config.endpoints = endpoints;
    config.window_bytes = window_bytes;
    config.io_timeout_ms = io_timeout_ms;
    config.connect_timeout_ms = 5000;
    context = MakeNetContext(config);
    EXPECT_EQ(context->num_workers(), n);
  }

  ~Fleet() {
    context.reset();  // closes connections before the servers stop
    for (auto& server : servers) server->Stop();
    std::filesystem::remove_all(dir);
  }
};

std::vector<Read> SimulatedReads(uint64_t genome_length, double coverage,
                                 double error_rate, uint64_t seed) {
  GenomeConfig genome_config;
  genome_config.length = genome_length;
  genome_config.seed = seed;
  PackedSequence reference = GenerateGenome(genome_config);
  ReadSimConfig read_config;
  read_config.coverage = coverage;
  read_config.error_rate = error_rate;
  read_config.seed = seed + 1;
  return SimulateReads(reference, read_config);
}

std::vector<std::vector<Pair>> SortedPartitions(const MerCounts& counts) {
  std::vector<std::vector<Pair>> out;
  out.reserve(counts.size());
  for (const auto& part : counts) {
    std::vector<Pair> sorted(part.begin(), part.end());
    std::sort(sorted.begin(), sorted.end());
    out.push_back(std::move(sorted));
  }
  return out;
}

// The headline property: a fleet-distributed CounterSession is
// bit-identical to the in-process batch counter, per output partition,
// across k x shards x workers.
TEST(DistributedCounterTest, BitIdenticalToInProcessAcrossGrid) {
  std::vector<Read> reads = SimulatedReads(20000, 10.0, 0.01, 77);
  for (int k : {15, 31}) {
    KmerCountConfig config;
    config.mer_length = k;
    config.num_workers = 4;
    config.num_threads = 4;
    config.coverage_threshold = 2;
    KmerCountStats oracle_stats;
    auto expected =
        SortedPartitions(CountCanonicalMers(reads, config, &oracle_stats));
    for (uint32_t shards : {1u, 8u}) {
      for (uint32_t workers : {1u, 2u, 3u}) {
        Fleet fleet(workers);
        config.num_shards = shards;
        config.net = fleet.context.get();
        CounterSession session(config);
        session.AddBatch(reads);
        KmerCountStats stats;
        auto actual = SortedPartitions(session.Finish(&stats));
        EXPECT_EQ(actual, expected)
            << "k=" << k << " shards=" << shards << " workers=" << workers;
        EXPECT_EQ(stats.distributed_workers, workers);
        EXPECT_GT(stats.net_chunks, 0u);
        EXPECT_GT(stats.net_sent_bytes, 0u);
        EXPECT_GT(stats.net_received_bytes, 0u);
        EXPECT_EQ(stats.distinct_mers, oracle_stats.distinct_mers);
        EXPECT_EQ(stats.surviving_mers, oracle_stats.surviving_mers);
        EXPECT_EQ(stats.total_windows, oracle_stats.total_windows);
        config.net = nullptr;
      }
    }
  }
}

// Same property over TCP (port 0 -> a free port, resolved by the server).
TEST(DistributedCounterTest, WorksOverTcp) {
  WorkerOptions options;
  options.listen = "0";
  ShardWorkerServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.listen_spec(), "0");  // resolved to the bound port
  {
    NetConfig config;
    config.endpoints = server.listen_spec();
    std::unique_ptr<NetContext> context = MakeNetContext(config);
    ASSERT_EQ(context->num_workers(), 1u);

    std::vector<Read> reads = SimulatedReads(8000, 8.0, 0.01, 5);
    KmerCountConfig count_config;
    count_config.mer_length = 21;
    count_config.num_workers = 2;
    count_config.num_threads = 2;
    auto expected = SortedPartitions(CountCanonicalMers(reads, count_config));
    count_config.net = context.get();
    CounterSession session(count_config);
    session.AddBatch(reads);
    KmerCountStats stats;
    EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
    EXPECT_EQ(stats.distributed_workers, 1u);
  }
  server.Stop();
}

// A tiny flow-control window forces real backpressure (many round trips);
// counts must be unaffected and the session must not deadlock.
TEST(DistributedCounterTest, TinyWindowStillBitIdentical) {
  std::vector<Read> reads = SimulatedReads(10000, 8.0, 0.02, 13);
  KmerCountConfig config;
  config.mer_length = 17;
  config.num_workers = 3;
  config.num_threads = 4;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  Fleet fleet(2, /*fail_after_frames=*/0, /*window_bytes=*/4096);
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
}

TEST(DistributedCounterTest, EmptyInputYieldsEmptyPartitions) {
  Fleet fleet(2);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 3;
  config.net = fleet.context.get();
  CounterSession session(config);
  KmerCountStats stats;
  MerCounts counts = session.Finish(&stats);
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& part : counts) EXPECT_TRUE(part.empty());
  EXPECT_EQ(stats.distributed_workers, 2u);
  EXPECT_EQ(stats.net_chunks, 0u);
}

// The telemetry reconciliation property: the worker-side counters pulled
// over the wire (kMetricsRequest/kMetricsSnapshot) account for exactly the
// traffic the client sent — every counter chunk was served by exactly one
// worker, and every chunk byte the client counted arrived.
TEST(DistributedCounterTest, TelemetryReconcilesWithClientCounters) {
  std::vector<Read> reads = SimulatedReads(15000, 8.0, 0.01, 21);
  Fleet fleet(2);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 3;
  config.num_threads = 4;
  config.num_shards = 8;
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  session.Finish(&stats);
  ASSERT_GT(stats.net_chunks, 0u);

  std::vector<obs::TelemetrySnapshot> telemetry =
      fleet.context->CollectMetrics();
  ASSERT_EQ(telemetry.size(), 2u);
  uint64_t frames_served = 0, chunk_bytes = 0;
  for (const obs::TelemetrySnapshot& worker : telemetry) {
    EXPECT_FALSE(worker.source.empty());
    EXPECT_GE(worker.Get("worker.connections"), 1u);
    EXPECT_EQ(worker.Get("worker.crc_rejects"), 0u);
    // frames_total counts everything (chunks + flush + metrics request);
    // frames_served counts only accepted counter chunks.
    EXPECT_GE(worker.Get("worker.frames_total"),
              worker.Get("worker.frames_served"));
    frames_served += worker.Get("worker.frames_served");
    chunk_bytes += worker.Get("worker.chunk_bytes");
  }
  EXPECT_EQ(frames_served, stats.net_chunks);
  EXPECT_EQ(chunk_bytes, stats.net_sent_bytes);

  // The wire snapshot is the server's own registry, faithfully encoded.
  uint64_t direct_served = 0;
  for (auto& server : fleet.servers) {
    const obs::SnapshotView direct(server->metrics().Snapshot());
    direct_served += direct.Get("worker.frames_served");
  }
  EXPECT_EQ(direct_served, frames_served);
}

// Parses a fault-plan literal or dies loudly — test scripts are static.
net::FaultPlan Plan(const std::string& text) {
  net::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(net::FaultPlan::Parse(text, &plan, &error)) << error;
  return plan;
}

// The tentpole recovery property: one of two workers dropping its
// connection mid-stream is survived — its shard leases move to the
// survivor, the journal replays the orphaned chunks, and the output is
// bit-identical to the in-process counter.
TEST(DistributedCounterTest, WorkerDeathMidStreamRecoversBitIdentical) {
  std::vector<Read> reads = SimulatedReads(30000, 12.0, 0.02, 3);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 8;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  Fleet fleet(2, /*fail_after_frames=*/0, /*window_bytes=*/1 << 20,
              {Plan("drop-conn@frame=5"), net::FaultPlan{}});
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_GT(stats.shards_reassigned, 0u);
  EXPECT_GT(stats.chunks_replayed, 0u);
  EXPECT_GT(stats.net_journal_bytes, 0u);
  EXPECT_FALSE(stats.net_degraded);
}

// A worker dying during result collection (after the whole data stream
// arrived) loses only its uncommitted staging; the shards rebuild on the
// survivor. The death frame is probed from a healthy run: AddBatch scans
// on the calling thread, so the frame sequence each worker sees is
// deterministic, and the last frame a healthy worker 0 received is its
// kCounterFinish — dying exactly there is a mid-collection crash.
TEST(DistributedCounterTest, DeathDuringCollectionRecovers) {
  std::vector<Read> reads = SimulatedReads(20000, 10.0, 0.01, 9);
  KmerCountConfig config;
  config.mer_length = 19;
  config.num_workers = 3;
  config.num_threads = 4;
  config.num_shards = 8;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  uint64_t finish_frame = 0;
  {
    Fleet healthy(2);
    config.net = healthy.context.get();
    CounterSession session(config);
    session.AddBatch(reads);
    KmerCountStats stats;
    ASSERT_EQ(SortedPartitions(session.Finish(&stats)), expected);
    const obs::SnapshotView w0(healthy.servers[0]->metrics().Snapshot());
    finish_frame = w0.Get("worker.frames_total");
    ASSERT_GT(finish_frame, 2u);  // open + at least one chunk + finish
  }
  Fleet fleet(2, /*fail_after_frames=*/0, /*window_bytes=*/1 << 20,
              {Plan("drop-conn@frame=" + std::to_string(finish_frame)),
               net::FaultPlan{}});
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_GT(stats.shards_reassigned, 0u);
  EXPECT_GT(stats.chunks_replayed, 0u);
  EXPECT_FALSE(stats.net_degraded);
}

// Every worker dying degrades the run to local counting from the journal —
// still bit-identical, still exit-clean. (fail_after_frames hits every
// server, so both workers die.)
TEST(DistributedCounterTest, AllWorkersDyingDegradesToLocalBitIdentical) {
  std::vector<Read> reads = SimulatedReads(30000, 12.0, 0.02, 3);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 8;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  Fleet fleet(2, /*fail_after_frames=*/3);
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  EXPECT_EQ(stats.worker_failures, 2u);
  EXPECT_TRUE(stats.net_degraded);
}

// A worker whose reply frame is corrupted (CRC flip) is indistinguishable
// from a dying one on the coordinator side: the connection fails and
// recovery takes over.
TEST(DistributedCounterTest, CorruptWorkerFrameTriggersRecovery) {
  std::vector<Read> reads = SimulatedReads(20000, 10.0, 0.02, 31);
  KmerCountConfig config;
  config.mer_length = 17;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 8;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  Fleet fleet(2, /*fail_after_frames=*/0, /*window_bytes=*/1 << 20,
              {Plan("corrupt-frame@frame=4"), net::FaultPlan{}});
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_FALSE(stats.net_degraded);
}

// A stalled (not dead) worker is detected by the heartbeat deadline — the
// run recovers instead of waiting out the stall.
TEST(DistributedCounterTest, StalledWorkerDetectedAndRecovered) {
  std::vector<Read> reads = SimulatedReads(30000, 12.0, 0.02, 11);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 8;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  // The stall (2.5 s) far exceeds the io timeout (400 ms): the liveness
  // thread must declare the worker dead long before the stall ends.
  Fleet fleet(2, /*fail_after_frames=*/0, /*window_bytes=*/1 << 20,
              {Plan("stall-worker@frame=4@ms=2500"), net::FaultPlan{}},
              /*io_timeout_ms=*/400);
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  EXPECT_EQ(stats.worker_failures, 1u);
  EXPECT_FALSE(stats.net_degraded);
}

// An unreachable endpoint fails fleet construction within the bounded
// retry budget, with the endpoint named in the diagnostic.
TEST(NetContextTest, UnreachableEndpointFailsWithBoundedRetry) {
  NetConfig config;
  config.endpoints = "unix:/nonexistent-dir-zzz/no.sock";
  config.connect_timeout_ms = 300;
  try {
    MakeNetContext(config);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no.sock"), std::string::npos)
        << e.what();
  }
}

TEST(NetContextTest, NoWorkersAskedReturnsNull) {
  NetConfig config;
  EXPECT_EQ(MakeNetContext(config), nullptr);
}

// Connects a raw frame connection to a fleet server and completes the
// magic exchange + kHello offering `offer`. The reply frame lands in
// `*reply`.
void RawHello(const std::string& spec, uint64_t offer, Frame* reply) {
  net::Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(net::ParseEndpoint(spec, &endpoint, &error)) << error;
  int fd = net::ConnectWithRetry(endpoint, 5000, &error);
  ASSERT_GE(fd, 0) << error;
  FrameConn conn(fd);
  ASSERT_TRUE(conn.SendMagic(&error)) << error;
  std::vector<uint8_t> hello;
  PutVarint64(&hello, offer);
  ASSERT_TRUE(conn.Send(MsgType::kHello, hello, &error)) << error;
  ASSERT_TRUE(conn.ExpectMagic(&error)) << error;
  ASSERT_EQ(conn.Recv(reply, &error), FrameConn::RecvResult::kOk) << error;
}

// Version negotiation at the hello: a client offering a future version is
// answered with the worker's own (lower) version instead of a refusal;
// only an offer below the compatibility floor keeps the versioned
// refusal diagnostic.
TEST(WorkerServerTest, HelloNegotiatesDownAndRefusesBelowFloor) {
  Fleet fleet(1);  // reuses its server; open more raw connections
  const std::string spec = fleet.servers[0]->listen_spec();
  Frame frame;
  RawHello(spec, net::kProtocolVersion + 7, &frame);
  ASSERT_EQ(frame.type, MsgType::kHelloOk);
  uint64_t negotiated = 0;
  size_t pos = 0;
  ASSERT_TRUE(
      GetVarint64(frame.body.data(), frame.body.size(), &pos, &negotiated));
  EXPECT_EQ(negotiated, net::kProtocolVersion);

  RawHello(spec, net::kMinProtocolVersion - 1, &frame);
  EXPECT_EQ(frame.type, MsgType::kError);
  const std::string text(frame.body.begin(), frame.body.end());
  EXPECT_NE(text.find("protocol version"), std::string::npos) << text;
}

// A v3-era client (bare-varint hello, no flags word) negotiates down and
// keeps the full frame plane — but the v4-only trace/clock frames are
// refused on the downgraded link with a diagnostic naming the version.
TEST(WorkerServerTest, V3ClientKeepsFramePlaneButNotTraceFrames) {
  Fleet fleet(1);
  net::Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(net::ParseEndpoint(fleet.servers[0]->listen_spec(), &endpoint,
                                 &error))
      << error;
  for (const MsgType refused :
       {MsgType::kTraceRequest, MsgType::kClockProbe}) {
    int fd = net::ConnectWithRetry(endpoint, 5000, &error);
    ASSERT_GE(fd, 0) << error;
    FrameConn conn(fd);
    ASSERT_TRUE(conn.SendMagic(&error)) << error;
    std::vector<uint8_t> hello;
    PutVarint64(&hello, 3);
    ASSERT_TRUE(conn.Send(MsgType::kHello, hello, &error)) << error;
    ASSERT_TRUE(conn.ExpectMagic(&error)) << error;
    Frame frame;
    ASSERT_EQ(conn.Recv(&frame, &error), FrameConn::RecvResult::kOk) << error;
    ASSERT_EQ(frame.type, MsgType::kHelloOk);
    uint64_t negotiated = 0;
    size_t pos = 0;
    ASSERT_TRUE(
        GetVarint64(frame.body.data(), frame.body.size(), &pos, &negotiated));
    EXPECT_EQ(negotiated, 3u);
    // The ordinary frame plane works on the downgraded link.
    ASSERT_TRUE(conn.Send(MsgType::kHeartbeat, {}, &error)) << error;
    ASSERT_EQ(conn.Recv(&frame, &error), FrameConn::RecvResult::kOk) << error;
    EXPECT_EQ(frame.type, MsgType::kHeartbeatOk);
    // The v4-only control frames do not.
    ASSERT_TRUE(conn.Send(refused, {}, &error)) << error;
    ASSERT_EQ(conn.Recv(&frame, &error), FrameConn::RecvResult::kOk) << error;
    EXPECT_EQ(frame.type, MsgType::kError);
    const std::string text(frame.body.begin(), frame.body.end());
    EXPECT_NE(text.find("v3"), std::string::npos) << text;
  }
}

// The coordinator side of the downgrade: offered v4, a v3-era worker
// replies with its legacy refusal diagnostic; the client parses the
// worker's version out of it and redials offering v3 with a bare-varint
// hello (no flags word — a v3 peer would misparse trailing bytes).
TEST(WorkerClientTest, RedialsDownToAV3Worker) {
  const std::string dir = MakeTempDir();
  net::Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(
      net::ParseEndpoint("unix:" + dir + "/v3.sock", &endpoint, &error))
      << error;
  int listen_fd = net::ListenOn(endpoint, &error);
  ASSERT_GE(listen_fd, 0) << error;

  std::vector<uint8_t> first_hello, second_hello;
  std::thread v3_worker([&] {
    std::string err;
    // First dial: refuse the v4 offer the way a v3 worker does.
    int fd = net::AcceptOn(listen_fd, &err);
    ASSERT_GE(fd, 0) << err;
    {
      FrameConn conn(fd);
      ASSERT_TRUE(conn.ExpectMagic(&err)) << err;
      Frame hello;
      ASSERT_EQ(conn.Recv(&hello, &err), FrameConn::RecvResult::kOk) << err;
      first_hello = hello.body;
      ASSERT_TRUE(conn.SendMagic(&err)) << err;
      const std::string text = "protocol version 4 != 3";
      ASSERT_TRUE(conn.Send(MsgType::kError,
                            std::vector<uint8_t>(text.begin(), text.end()),
                            &err))
          << err;
    }
    // Redial: accept the downgraded offer and serve until the client
    // hangs up.
    fd = net::AcceptOn(listen_fd, &err);
    ASSERT_GE(fd, 0) << err;
    FrameConn conn(fd);
    ASSERT_TRUE(conn.ExpectMagic(&err)) << err;
    Frame hello;
    ASSERT_EQ(conn.Recv(&hello, &err), FrameConn::RecvResult::kOk) << err;
    second_hello = hello.body;
    ASSERT_TRUE(conn.SendMagic(&err)) << err;
    std::vector<uint8_t> ok;
    PutVarint64(&ok, 3);
    ASSERT_TRUE(conn.Send(MsgType::kHelloOk, ok, &err)) << err;
    Frame frame;
    while (conn.Recv(&frame, &err) == FrameConn::RecvResult::kOk) {
      if (frame.type == MsgType::kHeartbeat) {
        conn.Send(MsgType::kHeartbeatOk, {}, &err);
      }
    }
  });

  {
    net::WorkerClient::Options options;
    options.endpoint = "unix:" + dir + "/v3.sock";
    options.arm_trace = true;  // must be withheld from the v3 hello
    net::WorkerClient client(options);
    EXPECT_EQ(client.negotiated_version(), 3u);
    EXPECT_FALSE(client.failed()) << client.error();
    // Pre-v4 link: the probe declines client-side, offset stays put.
    EXPECT_FALSE(client.ProbeClockOffset());
    EXPECT_EQ(client.clock_offset_us(), 0);
  }
  v3_worker.join();
  close(listen_fd);
  std::filesystem::remove_all(dir);

  // The v4 hello carried version + flags; the downgraded one is the bare
  // v3 varint — exactly one byte, no trace flag smuggled after it.
  size_t pos = 0;
  uint64_t offered = 0;
  ASSERT_TRUE(
      GetVarint64(first_hello.data(), first_hello.size(), &pos, &offered));
  EXPECT_EQ(offered, net::kProtocolVersion);
  EXPECT_GT(first_hello.size(), pos);  // flags word present on the v4 dial
  EXPECT_EQ(second_hello.size(), 1u);
  EXPECT_EQ(second_hello[0], 3u);
}

// Garbage after a valid handshake gets a kError frame, then the connection
// drops — the worker never processes what it could not validate.
TEST(WorkerServerTest, MalformedChunkGetsErrorFrame) {
  Fleet fleet(1);
  net::WorkerClient& client = fleet.context->client(0);
  std::vector<uint8_t> open;
  PutVarint64(&open, 21);  // mer_length
  PutVarint64(&open, 4);   // num_shards
  PutVarint64(&open, 2);   // num_workers
  PutVarint64(&open, 1);   // coverage_threshold
  ASSERT_TRUE(client.SendControl(MsgType::kCounterOpen, open));
  // A chunk whose payload is not a decodable pass-1 chunk.
  std::vector<uint8_t> junk;
  PutVarint64(&junk, 1);  // shard
  for (int i = 0; i < 32; ++i) junk.push_back(0xEE);
  std::atomic<bool> done_ran{false};
  client.SendData(MsgType::kCounterChunk, junk,
                  [&done_ran] { done_ran.store(true); });
  // The worker answers kError and drops the connection; the client fails
  // and the pending completion drains. NextResponse wakes when the failure
  // flag is set, which may be a beat before the drain runs the callback —
  // wait it out instead of racing it.
  Frame frame;
  EXPECT_FALSE(client.NextResponse(&frame));
  EXPECT_TRUE(client.failed());
  EXPECT_FALSE(client.error().empty());
  for (int i = 0; i < 2000 && !done_ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(done_ran.load());
}

// ---------------------------------------------------------------------------
// Retry backoff (pure computation: no clock, no sleeps).
// ---------------------------------------------------------------------------

TEST(BackoffTest, GrowsGeometricallyToTheCapWithoutJitter) {
  net::BackoffPolicy policy;
  policy.initial_ms = 10;
  policy.max_ms = 500;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  net::Backoff backoff(policy);
  std::vector<uint32_t> delays;
  for (int i = 0; i < 9; ++i) {
    uint32_t d = 0;
    ASSERT_TRUE(backoff.NextDelayMs(&d));
    delays.push_back(d);
  }
  EXPECT_EQ(delays, (std::vector<uint32_t>{10, 20, 40, 80, 160, 320, 500,
                                           500, 500}));
  EXPECT_EQ(backoff.attempts(), 9u);
}

TEST(BackoffTest, AttemptBudgetIsEnforced) {
  net::BackoffPolicy policy;
  policy.max_attempts = 3;
  net::Backoff backoff(policy);
  uint32_t d = 0;
  EXPECT_TRUE(backoff.NextDelayMs(&d));
  EXPECT_TRUE(backoff.NextDelayMs(&d));
  EXPECT_TRUE(backoff.NextDelayMs(&d));
  EXPECT_FALSE(backoff.NextDelayMs(&d));
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(BackoffTest, JitterIsBoundedAndDeterministicPerSeed) {
  net::BackoffPolicy policy;
  policy.initial_ms = 100;
  policy.max_ms = 1000;
  policy.jitter = 0.5;
  policy.seed = 42;
  net::Backoff a(policy);
  net::Backoff b(policy);
  for (int i = 0; i < 20; ++i) {
    uint32_t da = 0, db = 0;
    ASSERT_TRUE(a.NextDelayMs(&da));
    ASSERT_TRUE(b.NextDelayMs(&db));
    EXPECT_EQ(da, db) << "same policy+seed must reproduce, attempt " << i;
    EXPECT_GE(da, 1u);
    EXPECT_LE(da, policy.max_ms);
  }
}

// ---------------------------------------------------------------------------
// Fault-plan grammar.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  net::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(net::FaultPlan::Parse(
      "seed=7,drop-conn@frame=3,kill-worker@chunk=2@worker=1,"
      "delay@frame=1@ms=50,stall-worker@ms=200,corrupt-frame@chunk=4",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.rules[0].kind, net::FaultKind::kDropConn);
  EXPECT_EQ(plan.rules[0].frame, 3u);
  EXPECT_EQ(plan.rules[1].kind, net::FaultKind::kKillWorker);
  EXPECT_EQ(plan.rules[1].chunk, 2u);
  EXPECT_EQ(plan.rules[1].worker, 1);
  EXPECT_EQ(plan.rules[2].kind, net::FaultKind::kDelay);
  EXPECT_EQ(plan.rules[2].ms, 50u);
  // ToString re-parses to the same plan (the spawn path ships plans as
  // strings on worker command lines).
  net::FaultPlan reparsed;
  ASSERT_TRUE(net::FaultPlan::Parse(plan.ToString(), &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
  EXPECT_EQ(reparsed.rules.size(), plan.rules.size());
}

TEST(FaultPlanTest, RejectsMalformedEntries) {
  for (const char* bad :
       {"bogus", "drop-conn@frame=0", "drop-conn@frame=x", "delay@oops=1",
        "seed=x", "kill-worker@", "@frame=1", "drop-conn@chunk="}) {
    net::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(net::FaultPlan::Parse(bad, &plan, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // Empty text is a valid empty plan.
  net::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(net::FaultPlan::Parse("", &plan, &error)) << error;
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, ForWorkerFiltersAndStripsTheScope) {
  net::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(net::FaultPlan::Parse(
      "seed=3,drop-conn@frame=2@worker=0,delay@ms=5,corrupt-frame@worker=1",
      &plan, &error))
      << error;
  const net::FaultPlan w0 = plan.ForWorker(0);
  ASSERT_EQ(w0.rules.size(), 2u);  // its scoped rule + the unscoped one
  EXPECT_EQ(w0.seed, 3u);
  for (const net::FaultRule& rule : w0.rules) EXPECT_EQ(rule.worker, -1);
  const net::FaultPlan w2 = plan.ForWorker(2);
  ASSERT_EQ(w2.rules.size(), 1u);  // only the unscoped delay
  EXPECT_EQ(w2.rules[0].kind, net::FaultKind::kDelay);
}

// ---------------------------------------------------------------------------
// Chunk journal.
// ---------------------------------------------------------------------------

TEST(ChunkJournalTest, AppendsAndReplaysResidentChunks) {
  net::ChunkJournal::Options options;
  options.num_shards = 3;
  net::ChunkJournal journal(options);
  std::vector<std::vector<uint8_t>> wrote;
  for (uint8_t i = 0; i < 5; ++i) {
    wrote.push_back(std::vector<uint8_t>(16 + i, i));
    journal.Append(1, wrote.back());
  }
  journal.Append(2, {0xAA});
  EXPECT_EQ(journal.chunks(0), 0u);
  EXPECT_EQ(journal.chunks(1), 5u);
  EXPECT_EQ(journal.total_chunks(), 6u);
  EXPECT_EQ(journal.spilled_bytes(), 0u);

  std::vector<std::vector<uint8_t>> got;
  std::string error;
  ASSERT_TRUE(journal.Replay(
      1, [&](const std::vector<uint8_t>& p) { got.push_back(p); }, &error))
      << error;
  // Replay order is unspecified; compare as multisets.
  std::sort(got.begin(), got.end());
  std::sort(wrote.begin(), wrote.end());
  EXPECT_EQ(got, wrote);
}

TEST(ChunkJournalTest, OverflowSpillsToDiskAndReplaysEverything) {
  net::ChunkJournal::Options options;
  options.num_shards = 2;
  options.fallback_budget_bytes = 256;  // force overflow quickly
  net::ChunkJournal journal(options);
  const size_t kChunks = 40;
  for (size_t i = 0; i < kChunks; ++i) {
    journal.Append(0, std::vector<uint8_t>(64, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(journal.chunks(0), kChunks);
  EXPECT_GT(journal.spilled_bytes(), 0u);
  EXPECT_EQ(journal.total_bytes(), kChunks * 64u);

  size_t replayed = 0;
  uint64_t byte_sum = 0;
  std::string error;
  ASSERT_TRUE(journal.Replay(
      0,
      [&](const std::vector<uint8_t>& p) {
        ASSERT_EQ(p.size(), 64u);
        ++replayed;
        byte_sum += p[0];
      },
      &error))
      << error;
  EXPECT_EQ(replayed, kChunks);
  EXPECT_EQ(byte_sum, kChunks * (kChunks - 1) / 2);  // every payload, once
}

// ---------------------------------------------------------------------------
// Worker process lifecycle: graceful SIGTERM drain, SIGPIPE immunity.
// ---------------------------------------------------------------------------

// SIGTERM to the real ppa_shard_worker binary drains and exits 0 — an
// orchestrator's routine stop is not a crash.
TEST(WorkerProcessTest, SigtermDrainsAndExitsZero) {
  // The worker binary sits next to this test binary in the build tree.
  const std::string binary =
      (std::filesystem::read_symlink("/proc/self/exe").parent_path() /
       "ppa_shard_worker")
          .string();
  ASSERT_TRUE(std::filesystem::exists(binary)) << binary;
  const std::string dir = MakeTempDir();
  const std::string listen = "unix:" + dir + "/drain.sock";
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    execl(binary.c_str(), "ppa_shard_worker", "--listen", listen.c_str(),
          "--log-level", "silent", static_cast<char*>(nullptr));
    _exit(127);
  }
  // Prove it is serving before signalling: connect and handshake.
  net::Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(net::ParseEndpoint(listen, &endpoint, &error)) << error;
  int fd = net::ConnectWithRetry(endpoint, 10000, &error);
  ASSERT_GE(fd, 0) << error;
  close(fd);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "status " << status;
  std::filesystem::remove_all(dir);
}

// Writing into a connection whose peer vanished must fail with a
// diagnostic, not deliver SIGPIPE (which would kill the process and the
// whole test run with it).
TEST(WorkerProcessTest, SendToClosedPeerFailsWithoutSigpipe) {
  ConnPair pair;
  pair.b.reset();  // peer gone
  const std::vector<uint8_t> body(1 << 16, 0x77);
  std::string error;
  bool failed = false;
  // The first sends may land in the socket buffer; keep pushing until the
  // kernel reports the broken pipe as an error return.
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !pair.a->Send(MsgType::kStoreRecord, body, &error);
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Remote record store (the shuffle's "spill to cluster memory" path).
// ---------------------------------------------------------------------------

TEST(RemoteRecordStoreTest, RoundTripsRecordsAcrossWorkers) {
  Fleet fleet(3);
  RecordStore* store = fleet.context->depot();
  const uint32_t kFiles = 7;  // > workers: several files share an owner
  std::vector<uint32_t> ids;
  for (uint32_t f = 0; f < kFiles; ++f) {
    ids.push_back(store->NewFile("shard-" + std::to_string(f)));
  }
  std::atomic<int> done_count{0};
  std::vector<std::vector<std::vector<uint8_t>>> written(kFiles);
  for (uint32_t f = 0; f < kFiles; ++f) {
    for (uint32_t r = 0; r < 5 + f; ++r) {
      std::vector<uint8_t> payload((r * 37) % 256 + 1,
                                   static_cast<uint8_t>(f * 16 + r));
      written[f].push_back(payload);
      store->Append(ids[f], std::move(payload),
                    [&done_count] { ++done_count; });
    }
  }
  ASSERT_TRUE(store->Sync()) << store->error();
  // In-order acks: the barrier proves every completion callback ran.
  int expected_done = 0;
  for (uint32_t f = 0; f < kFiles; ++f) {
    expected_done += static_cast<int>(written[f].size());
  }
  EXPECT_EQ(done_count.load(), expected_done);

  for (uint32_t f = 0; f < kFiles; ++f) {
    std::unique_ptr<RecordSource> source = store->OpenSource(ids[f]);
    ASSERT_NE(source, nullptr);
    std::vector<std::vector<uint8_t>> got;
    std::vector<uint8_t> record;
    while (source->Next(&record)) got.push_back(record);
    EXPECT_TRUE(source->ok()) << source->error();
    EXPECT_EQ(got, written[f]) << "file " << f;
    EXPECT_FALSE(store->Describe(ids[f]).empty());
  }
  EXPECT_TRUE(store->error().empty());
}

TEST(RemoteRecordStoreTest, EmptyFileReadsBackEmpty) {
  Fleet fleet(1);
  RecordStore* store = fleet.context->depot();
  uint32_t id = store->NewFile("empty");
  ASSERT_TRUE(store->Sync());
  std::unique_ptr<RecordSource> source = store->OpenSource(id);
  ASSERT_NE(source, nullptr);
  std::vector<uint8_t> record;
  EXPECT_FALSE(source->Next(&record));
  EXPECT_TRUE(source->ok()) << source->error();
}

// ---------------------------------------------------------------------------
// Clock-offset estimation (the trace-stitching time base).
// ---------------------------------------------------------------------------

// An injected worker clock skew — ahead and behind — is recovered by the
// ping-midpoint estimate to well under the skew itself. In-process server
// and client share one MonotonicMicros epoch, so the skew knob is the
// entire true offset and the estimate error is just the RTT asymmetry.
TEST(ClockOffsetTest, EstimatesInjectedSkewBothDirections) {
  const std::string dir = MakeTempDir();
  int iteration = 0;
  for (const int64_t skew_us : {400000ll, -400000ll}) {
    WorkerOptions options;
    options.listen =
        "unix:" + dir + "/skew" + std::to_string(iteration++) + ".sock";
    options.clock_skew_us = skew_us;
    ShardWorkerServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    {
      net::WorkerClient::Options copts;
      copts.endpoint = options.listen;
      net::WorkerClient client(copts);  // probes at handshake on v4 links
      EXPECT_EQ(client.negotiated_version(), net::kProtocolVersion);
      // Unix-socket RTTs are tens of microseconds; 20 ms of tolerance is
      // orders of magnitude of slack without letting the sign flip.
      EXPECT_NEAR(static_cast<double>(client.clock_offset_us()),
                  static_cast<double>(skew_us), 20000.0);
      // Re-probing (what CollectTraces does) lands in the same place.
      ASSERT_TRUE(client.ProbeClockOffset());
      EXPECT_NEAR(static_cast<double>(client.clock_offset_us()),
                  static_cast<double>(skew_us), 20000.0);
    }
    server.Stop();
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// HTTP sniffing on the worker's listen socket (Prometheus pull).
// ---------------------------------------------------------------------------

int RawConnect(const std::string& spec) {
  net::Endpoint endpoint;
  std::string error;
  EXPECT_TRUE(net::ParseEndpoint(spec, &endpoint, &error)) << error;
  int fd = net::ConnectWithRetry(endpoint, 5000, &error);
  EXPECT_GE(fd, 0) << error;
  return fd;
}

void WriteAll(int fd, const std::string& text) {
  size_t sent = 0;
  while (sent < text.size()) {
    ssize_t n = write(fd, text.data() + sent, text.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

std::string ReadUntilEof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

TEST(WorkerHttpTest, GetOnTheFrameSocketReturnsAnExposition) {
  Fleet fleet(1);
  int fd = RawConnect(fleet.servers[0]->listen_spec());
  WriteAll(fd, "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n");
  shutdown(fd, SHUT_WR);
  const std::string response = ReadUntilEof(fd);
  close(fd);
  ASSERT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // The body is the worker's own registry, in exposition form — including
  // the scrape counting itself.
  EXPECT_NE(response.find("# TYPE ppa_worker_connections counter"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("ppa_worker_http_requests 1\n"), std::string::npos)
      << response;
  // Content-Length is exact, so curl-style clients do not hang.
  const size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const size_t body_bytes = response.size() - header_end - 4;
  EXPECT_NE(response.find("Content-Length: " + std::to_string(body_bytes) +
                          "\r\n"),
            std::string::npos)
      << response;
}

TEST(WorkerHttpTest, PipelinedRequestsEachGetAResponse) {
  Fleet fleet(1);
  int fd = RawConnect(fleet.servers[0]->listen_spec());
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  WriteAll(fd, get + get);  // both requests in one segment
  shutdown(fd, SHUT_WR);
  const std::string response = ReadUntilEof(fd);
  close(fd);
  size_t count = 0;
  for (size_t at = response.find("HTTP/1.0 200 OK");
       at != std::string::npos;
       at = response.find("HTTP/1.0 200 OK", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u) << response;
}

// The sniff must wait out a slow client: "GE" alone is not yet decidable,
// and the rest arriving later still routes to the HTTP handler.
TEST(WorkerHttpTest, SlowFirstBytesStillSniffAsHttp) {
  Fleet fleet(1);
  int fd = RawConnect(fleet.servers[0]->listen_spec());
  WriteAll(fd, "GE");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  WriteAll(fd, "T /metrics HTTP/1.0\r\n\r\n");
  shutdown(fd, SHUT_WR);
  const std::string response = ReadUntilEof(fd);
  close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
}

// Bytes that are neither "GET " nor the frame magic close cleanly (no
// HTTP response, no hang) and leave the server serving.
TEST(WorkerHttpTest, JunkFirstBytesCloseCleanly) {
  Fleet fleet(1);
  int fd = RawConnect(fleet.servers[0]->listen_spec());
  WriteAll(fd, "BOGUS bytes that are neither protocol");
  shutdown(fd, SHUT_WR);
  const std::string response = ReadUntilEof(fd);
  close(fd);
  EXPECT_EQ(response.find("HTTP/1.0"), std::string::npos) << response;

  // The server shrugged it off: a well-formed scrape still answers.
  fd = RawConnect(fleet.servers[0]->listen_spec());
  WriteAll(fd, "GET /metrics HTTP/1.0\r\n\r\n");
  shutdown(fd, SHUT_WR);
  const std::string again = ReadUntilEof(fd);
  close(fd);
  EXPECT_EQ(again.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << again;
}

// Scrapes hammering the listen socket must not perturb concurrent frame
// clients: a counting run stays bit-identical under scrape load.
TEST(WorkerHttpTest, ScrapesDoNotDisturbFrameClients) {
  std::vector<Read> reads = SimulatedReads(10000, 8.0, 0.01, 41);
  KmerCountConfig config;
  config.mer_length = 19;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 4;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));
  Fleet fleet(2);
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      for (auto& server : fleet.servers) {
        int fd = RawConnect(server->listen_spec());
        if (fd < 0) continue;
        WriteAll(fd, "GET /metrics HTTP/1.0\r\n\r\n");
        shutdown(fd, SHUT_WR);
        ReadUntilEof(fd);
        close(fd);
      }
    }
  });
  config.net = fleet.context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);
  stop.store(true);
  scraper.join();
  const obs::SnapshotView w0(fleet.servers[0]->metrics().Snapshot());
  EXPECT_GE(w0.Get("worker.http_requests"), 1u);
  EXPECT_EQ(w0.Get("worker.crc_rejects"), 0u);
}

// ---------------------------------------------------------------------------
// Cross-process trace stitching end to end: a spawned 2-worker fleet.
// ---------------------------------------------------------------------------

// The acceptance property of the stitched timeline: with tracing armed, a
// real (spawned-process) fleet yields one merged trace where both worker
// processes appear on their own pid tracks and every offset-corrected
// worker timestamp lands inside the coordinator-clock run window.
TEST(DistributedTraceTest, SpawnedFleetMergesOneTimelineAcrossPids) {
  obs::StartTrace();
  obs::SetTraceThreadName("net-test-coordinator");
  const int64_t run_start_us = static_cast<int64_t>(MonotonicMicros());

  std::vector<Read> reads = SimulatedReads(12000, 8.0, 0.01, 53);
  KmerCountConfig config;
  config.mer_length = 21;
  config.num_workers = 2;
  config.num_threads = 4;
  config.num_shards = 4;
  auto expected = SortedPartitions(CountCanonicalMers(reads, config));

  NetConfig net_config;
  net_config.spawn_workers = 2;
  net_config.arm_trace = true;
  std::unique_ptr<NetContext> context = MakeNetContext(net_config);
  ASSERT_NE(context, nullptr);
  ASSERT_EQ(context->num_workers(), 2u);
  config.net = context.get();
  CounterSession session(config);
  session.AddBatch(reads);
  KmerCountStats stats;
  EXPECT_EQ(SortedPartitions(session.Finish(&stats)), expected);

  std::vector<obs::ProcessTrace> traces = context->CollectTraces();
  const int64_t run_end_us = static_cast<int64_t>(MonotonicMicros());
  obs::StopTrace();

  ASSERT_EQ(traces.size(), 2u);
  // Generous slack over the probe error (RTT midpoint on a loaded box).
  const int64_t kSlackUs = 200000;
  for (const obs::ProcessTrace& trace : traces) {
    EXPECT_FALSE(trace.label.empty());
    bool saw_ingest = false, saw_finalize = false;
    for (const obs::RemoteTraceEvent& event : trace.events) {
      if (event.name == "worker.chunk_ingest") saw_ingest = true;
      if (event.name == "worker.count_finalize") saw_finalize = true;
      const int64_t corrected = event.start_us - trace.clock_offset_us;
      EXPECT_GE(corrected + kSlackUs, run_start_us) << event.name;
      EXPECT_LE(corrected, run_end_us + kSlackUs) << event.name;
    }
    EXPECT_TRUE(saw_ingest) << trace.label;
    EXPECT_TRUE(saw_finalize) << trace.label;
  }

  // The merged JSON puts the coordinator on pid 1 and each worker on its
  // own pid track, offset-corrected onto one timeline.
  std::ostringstream out;
  obs::WriteTraceJson(out, traces);
  context.reset();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<uint64_t> ingest_pids;
  std::set<uint64_t> named_pids;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    const JsonValue* name = e.Find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->str == "X" && name->str == "worker.chunk_ingest") {
      ingest_pids.insert(e.GetU64("pid"));
    }
    if (ph->str == "M" && name->str == "process_name") {
      named_pids.insert(e.GetU64("pid"));
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Find("name")->str.rfind("worker ", 0), 0u);
    }
  }
  EXPECT_EQ(ingest_pids, (std::set<uint64_t>{2, 3}));
  EXPECT_EQ(named_pids, (std::set<uint64_t>{2, 3}));
}

}  // namespace
}  // namespace ppa
