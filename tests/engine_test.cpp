// Tests for the Pregel engine: supersteps, vote-to-halt/reactivation,
// aggregators, combiners, graph mutation and statistics.
#include "pregel/engine.h"

#include <gtest/gtest.h>

#include <span>

#include "pregel/convert.h"
#include "pregel/graph.h"

namespace ppa {
namespace {

// Propagates the maximum vertex id through the graph (classic Pregel demo).
struct MaxVertex {
  using Message = uint64_t;
  uint64_t id = 0;
  bool halted = false;
  bool removed = false;
  std::vector<uint64_t> nbrs;
  uint64_t value = 0;

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const uint64_t> msgs) {
    uint64_t best = (ctx.superstep() == 0) ? id : value;
    for (uint64_t m : msgs) best = std::max(best, m);
    if (best > value || ctx.superstep() == 0) {
      value = best;
      for (uint64_t n : nbrs) ctx.SendTo(n, value);
    }
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, MaxValuePropagation) {
  PartitionedGraph<MaxVertex> graph(4);
  // A path 1-2-3-4-5 plus isolated vertex 9.
  for (uint64_t id : {1, 2, 3, 4, 5, 9}) {
    MaxVertex v;
    v.id = id;
    if (id >= 2 && id <= 5) v.nbrs.push_back(id - 1);
    if (id >= 1 && id <= 4) v.nbrs.push_back(id + 1);
    graph.Add(std::move(v));
  }
  Engine<MaxVertex> engine({.num_threads = 2, .job_name = "max"});
  RunStats stats = engine.Run(graph);
  for (uint64_t id : {1, 2, 3, 4, 5}) {
    EXPECT_EQ(graph.Find(id)->value, 5u) << id;
  }
  EXPECT_EQ(graph.Find(9)->value, 9u);
  EXPECT_GT(stats.num_supersteps(), 3u);  // Path diameter forces rounds.
  EXPECT_GT(stats.total_messages(), 0u);
}

// Counts active vertices via an aggregator and reads it back next step.
struct AggVertex {
  using Message = uint8_t;
  uint64_t id = 0;
  bool halted = false;
  bool removed = false;
  uint64_t seen_at_step1 = 0;

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const uint8_t>) {
    if (ctx.superstep() == 0) {
      ctx.Aggregate(0, 1);
      ctx.Aggregate(1, id);
      return;  // Stay active for one more superstep.
    }
    if (ctx.superstep() == 1) {
      seen_at_step1 = ctx.PrevAggregate(0) * 1000 + ctx.PrevAggregate(1);
    }
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, AggregatorSumsAcrossWorkers) {
  PartitionedGraph<AggVertex> graph(4);
  for (uint64_t id : {10, 20, 30}) {
    AggVertex v;
    v.id = id;
    graph.Add(std::move(v));
  }
  Engine<AggVertex> engine({.num_threads = 2, .job_name = "agg"});
  engine.Run(graph);
  // Each vertex saw count=3 and sum=60 from the previous superstep.
  for (uint64_t id : {10, 20, 30}) {
    EXPECT_EQ(graph.Find(id)->seen_at_step1, 3u * 1000 + 60u);
  }
}

// Message combiner: sums messages to the same destination at the sender.
struct CombVertex {
  using Message = uint64_t;
  struct Combiner {
    static void Combine(uint64_t& into, const uint64_t& msg) { into += msg; }
  };
  uint64_t id = 0;
  bool halted = false;
  bool removed = false;
  uint64_t received = 0;

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      if (id != 0) {
        // Everyone sends 3 messages to vertex 0.
        for (int i = 0; i < 3; ++i) ctx.SendTo(0, id);
      }
      ctx.VoteToHalt();
      return;
    }
    for (uint64_t m : msgs) received += m;
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, CombinerReducesMessageCount) {
  PartitionedGraph<CombVertex> graph(2);
  for (uint64_t id : {0, 1, 2, 3, 4}) {
    CombVertex v;
    v.id = id;
    graph.Add(std::move(v));
  }
  Engine<CombVertex> engine({.num_threads = 1, .job_name = "combine"});
  RunStats stats = engine.Run(graph);
  // Sum preserved: 3*(1+2+3+4) = 30.
  EXPECT_EQ(graph.Find(0)->received, 30u);
  // Without combining: 12 messages; with sender-side combining, at most one
  // per (source partition, destination vertex): <= 2.
  EXPECT_LE(stats.supersteps[0].messages_sent, 2u);
}

// Mutation: vertex 1 spawns vertex 100 and removes itself; messages to the
// removed vertex are dropped.
struct MutVertex {
  using Message = uint64_t;
  uint64_t id = 0;
  bool halted = false;
  bool removed = false;
  uint64_t got = 0;

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const uint64_t> msgs) {
    for (uint64_t m : msgs) got += m;
    if (ctx.superstep() == 0 && id == 1) {
      MutVertex spawned;
      spawned.id = 100;
      ctx.AddVertex(spawned);
      ctx.RemoveSelf();
      return;
    }
    if (ctx.superstep() == 0 && id == 2) {
      return;  // Stay active to send in superstep 1.
    }
    if (ctx.superstep() == 1 && id == 2) {
      ctx.SendTo(1, 7);    // Dropped: vertex 1 is removed.
      ctx.SendTo(100, 9);  // Delivered to the new vertex.
    }
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, MutationAndDroppedMessages) {
  PartitionedGraph<MutVertex> graph(2);
  for (uint64_t id : {1, 2}) {
    MutVertex v;
    v.id = id;
    graph.Add(std::move(v));
  }
  Engine<MutVertex> engine({.num_threads = 1, .job_name = "mutate"});
  engine.Run(graph);
  EXPECT_EQ(graph.Find(1), nullptr);
  ASSERT_NE(graph.Find(100), nullptr);
  EXPECT_EQ(graph.Find(100)->got, 9u);
}

TEST(EngineTest, StatsTrackPerWorkerLoads) {
  PartitionedGraph<MaxVertex> graph(4);
  for (uint64_t id = 0; id < 64; ++id) {
    MaxVertex v;
    v.id = id;
    v.nbrs.push_back((id + 1) % 64);
    graph.Add(std::move(v));
  }
  Engine<MaxVertex> engine({.num_threads = 2, .job_name = "stats"});
  RunStats stats = engine.Run(graph);
  ASSERT_FALSE(stats.supersteps.empty());
  const SuperstepStats& first = stats.supersteps[0];
  EXPECT_EQ(first.active_vertices, 64u);
  ASSERT_EQ(first.worker_messages.size(), 4u);
  uint64_t sum = 0;
  for (uint64_t m : first.worker_messages) sum += m;
  EXPECT_EQ(sum, first.messages_sent);
  EXPECT_EQ(first.message_bytes, first.messages_sent * sizeof(uint64_t));
}

// Aggregator sums must be deterministic regardless of how many OS threads
// execute the logical workers: slot totals are summed per worker at the
// barrier, never concurrently mutated.
TEST(EngineTest, AggregatorDeterministicUnderConcurrency) {
  constexpr uint64_t kVertices = 257;  // prime-ish: uneven partitions
  uint64_t expected_id_sum = 0;
  for (uint64_t id = 1; id <= kVertices; ++id) expected_id_sum += id * 3;

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    PartitionedGraph<AggVertex> graph(8);
    for (uint64_t id = 1; id <= kVertices; ++id) {
      AggVertex v;
      v.id = id * 3;
      graph.Add(std::move(v));
    }
    Engine<AggVertex> engine({.num_threads = threads, .job_name = "agg-mt"});
    engine.Run(graph);
    const uint64_t expected = kVertices * 1000 + expected_id_sum;
    for (uint64_t id = 1; id <= kVertices; ++id) {
      ASSERT_EQ(graph.Find(id * 3)->seen_at_step1, expected)
          << "threads=" << threads << " id=" << id * 3;
    }
  }
}

// Combiner correctness with num_threads > 1: message sums are preserved
// exactly, and sender-side combining still bounds the shuffle volume at one
// message per (source partition, destination).
TEST(EngineTest, CombinerCorrectUnderConcurrency) {
  constexpr uint64_t kSenders = 96;
  constexpr uint32_t kWorkers = 8;
  PartitionedGraph<CombVertex> graph(kWorkers);
  for (uint64_t id = 0; id <= kSenders; ++id) {
    CombVertex v;
    v.id = id;
    graph.Add(std::move(v));
  }
  Engine<CombVertex> engine({.num_threads = 4, .job_name = "combine-mt"});
  RunStats stats = engine.Run(graph);
  // Sum preserved exactly: every sender id in [1, kSenders] sends id thrice.
  EXPECT_EQ(graph.Find(0)->received, 3 * kSenders * (kSenders + 1) / 2);
  // At most one combined message per source partition reaches vertex 0.
  EXPECT_LE(stats.supersteps[0].messages_sent, kWorkers);
}

TEST(ConvertTest, ReshufflesByNewIds) {
  PartitionedGraph<MaxVertex> src(4);
  for (uint64_t id = 0; id < 20; ++id) {
    MaxVertex v;
    v.id = id;
    v.value = id * 10;
    src.Add(std::move(v));
  }
  // Each vertex becomes two vertices with remapped ids.
  auto dst = ConvertGraph<AggVertex>(
      std::move(src),
      [](MaxVertex&& v, std::vector<AggVertex>& out) {
        AggVertex a;
        a.id = v.id + 1000;
        out.push_back(a);
        a.id = v.id + 2000;
        out.push_back(a);
      },
      /*num_threads=*/2);
  EXPECT_EQ(dst.size(), 40u);
  for (uint64_t id = 0; id < 20; ++id) {
    EXPECT_NE(dst.Find(id + 1000), nullptr);
    EXPECT_NE(dst.Find(id + 2000), nullptr);
  }
  // Vertices landed on their hash partitions.
  for (uint32_t p = 0; p < dst.num_workers(); ++p) {
    for (const AggVertex& v : dst.partition(p).vertices) {
      EXPECT_EQ(PartitionOf(v.id, dst.num_workers()), p);
    }
  }
}

}  // namespace
}  // namespace ppa
