// Tests for the ppa_assemble CLI driver (cli/assemble_cli.h): flag parsing
// and the end-to-end acceptance property — assembling an exported simulated
// FASTQ through the streaming path produces contigs whose QUAST-style
// metrics equal the in-memory pipeline's on the same dataset.
#include "cli/assemble_cli.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/assembler.h"
#include "io/fastx.h"
#include "net/worker.h"
#include "quality/quast.h"
#include "sim/datasets.h"
#include "sim/fastq_export.h"
#include "util/json.h"

namespace ppa {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool Parse(std::vector<const char*> args, AssembleCliOptions* opts,
           std::string* error) {
  bool help = false;
  return ParseAssembleCliArgs(static_cast<int>(args.size()), args.data(),
                              opts, &help, error);
}

TEST(AssembleCliParseTest, FlagsMapOntoOptions) {
  AssembleCliOptions opts;
  std::string error;
  ASSERT_TRUE(Parse({"-k", "21", "--theta", "3", "--tip-length", "60",
                     "--bubble-edit", "4", "--workers", "8", "--threads", "2",
                     "--rounds", "2", "--labeling", "sv", "--shuffle", "sort",
                     "--shards", "16", "--pass1-encoding", "raw",
                     "--minimizer-len", "9",
                     "--queue-bytes", "5000", "--spill-mode", "auto",
                     "--memory-budget-bytes", "123456", "--spill-dir",
                     "/tmp/spill-parent", "--batch-reads", "128",
                     "--batch-bases", "65536", "--queue-depth", "2",
                     "--contigs", "c.fasta", "--stats", "s.txt",
                     "--reference", "r.fasta", "--min-contig", "100",
                     "in.fastq", "in2.fasta"},
                    &opts, &error))
      << error;
  EXPECT_EQ(opts.assembler.k, 21);
  EXPECT_EQ(opts.assembler.coverage_threshold, 3u);
  EXPECT_EQ(opts.assembler.tip_length_threshold, 60u);
  EXPECT_EQ(opts.assembler.bubble_edit_distance, 4u);
  EXPECT_EQ(opts.assembler.num_workers, 8u);
  EXPECT_EQ(opts.assembler.num_threads, 2u);
  EXPECT_EQ(opts.assembler.error_correction_rounds, 2);
  EXPECT_EQ(opts.labeling, LabelingMethod::kSimplifiedSv);
  EXPECT_EQ(opts.assembler.shuffle_strategy, ShuffleStrategy::kSort);
  EXPECT_EQ(opts.assembler.kmer_shards, 16u);
  EXPECT_EQ(opts.assembler.pass1_encoding, Pass1Encoding::kRaw);
  EXPECT_EQ(opts.assembler.minimizer_len, 9u);
  EXPECT_EQ(opts.assembler.kmer_queue_bytes, 5000u);
  EXPECT_EQ(opts.assembler.spill_mode, SpillMode::kAuto);
  EXPECT_EQ(opts.assembler.memory_budget_bytes, 123456u);
  EXPECT_EQ(opts.assembler.spill_dir, "/tmp/spill-parent");
  EXPECT_EQ(opts.stream.batch_reads, 128u);
  EXPECT_EQ(opts.stream.batch_bases, 65536u);
  EXPECT_EQ(opts.stream.queue_depth, 2u);
  EXPECT_EQ(opts.contigs_out, "c.fasta");
  EXPECT_EQ(opts.stats_out, "s.txt");
  EXPECT_EQ(opts.reference, "r.fasta");
  EXPECT_EQ(opts.min_contig, 100u);
  ASSERT_EQ(opts.inputs.size(), 2u);
  EXPECT_EQ(opts.inputs[0], "in.fastq");
  EXPECT_EQ(opts.inputs[1], "in2.fasta");
}

TEST(AssembleCliParseTest, RejectsBadInput) {
  AssembleCliOptions opts;
  std::string error;
  EXPECT_FALSE(Parse({}, &opts, &error));  // no inputs
  opts = {};
  EXPECT_FALSE(Parse({"--bogus", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"-k", "notanint", "in.fastq"}, &opts, &error));
  opts = {};
  EXPECT_FALSE(Parse({"-k"}, &opts, &error));  // missing value
  opts = {};
  // Negative values must not wrap through strtoull.
  EXPECT_FALSE(Parse({"--theta", "-1", "in.fastq"}, &opts, &error));
  opts = {};
  // Range violations are usage errors, not PPA_CHECK aborts.
  EXPECT_FALSE(Parse({"-k", "33", "in.fastq"}, &opts, &error));
  opts = {};
  EXPECT_FALSE(Parse({"-k", "20", "in.fastq"}, &opts, &error));  // even
  EXPECT_NE(error.find("odd"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"--workers", "0", "in.fastq"}, &opts, &error));
  opts = {};
  EXPECT_FALSE(Parse({"--shuffle", "merge", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--shuffle"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"--pass1-encoding", "packed", "in.fastq"}, &opts,
                     &error));
  EXPECT_NE(error.find("--pass1-encoding"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"--minimizer-len", "0", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--minimizer-len"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"--minimizer-len", "32", "in.fastq"}, &opts, &error));
  opts = {};
  // 2^32 + 11 must not wrap into range through the uint32 cast.
  EXPECT_FALSE(
      Parse({"--minimizer-len", "4294967307", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--minimizer-len"), std::string::npos);
  opts = {};
  EXPECT_FALSE(Parse({"--spill-mode", "sometimes", "in.fastq"}, &opts,
                     &error));
  EXPECT_NE(error.find("--spill-mode"), std::string::npos);
  opts = {};
  EXPECT_FALSE(
      Parse({"--memory-budget-bytes", "-5", "in.fastq"}, &opts, &error));
  opts = {};
  // Serial counting only exists on the in-memory path.
  EXPECT_FALSE(Parse({"--serial-counting", "in.fastq"}, &opts, &error));
  opts = {};
  bool help = false;
  std::vector<const char*> help_args = {"--help"};
  EXPECT_TRUE(ParseAssembleCliArgs(1, help_args.data(), &opts, &help,
                                   &error));
  EXPECT_TRUE(help);
}

TEST(AssembleCliParseTest, ObservabilityFlagsMapOntoOptions) {
  AssembleCliOptions opts;
  std::string error;
  ASSERT_TRUE(Parse({"--report-json", "run.json", "--trace-out", "trace.json",
                     "--progress", "--log-level", "debug", "in.fastq"},
                    &opts, &error))
      << error;
  EXPECT_EQ(opts.report_json, "run.json");
  EXPECT_EQ(opts.trace_out, "trace.json");
  EXPECT_TRUE(opts.progress);
  EXPECT_EQ(opts.log_level, "debug");

  // Bad levels are a usage error at parse time, not a silent default.
  opts = {};
  EXPECT_FALSE(Parse({"--log-level", "chatty", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--log-level"), std::string::npos) << error;

  // --metrics-listen takes any endpoint spec and is validated at parse
  // time, so a typo fails before the pipeline spends an hour running.
  opts = {};
  ASSERT_TRUE(
      Parse({"--metrics-listen", "127.0.0.1:9464", "in.fastq"}, &opts,
            &error))
      << error;
  EXPECT_EQ(opts.metrics_listen, "127.0.0.1:9464");
  opts = {};
  EXPECT_FALSE(
      Parse({"--metrics-listen", "not a port", "in.fastq"}, &opts, &error));
  EXPECT_NE(error.find("--metrics-listen"), std::string::npos) << error;
}

TEST(AssembleCliParseTest, DistributedFlagsMapOntoOptions) {
  AssembleCliOptions opts;
  std::string error;
  ASSERT_TRUE(Parse({"--shard-workers", "3", "--worker-binary", "/bin/w",
                     "--net-window-bytes", "4096", "--net-timeout-ms", "777",
                     "in.fastq"},
                    &opts, &error))
      << error;
  EXPECT_EQ(opts.assembler.shard_workers, 3u);
  EXPECT_EQ(opts.assembler.worker_binary, "/bin/w");
  EXPECT_EQ(opts.assembler.net_window_bytes, 4096u);
  EXPECT_EQ(opts.assembler.net_timeout_ms, 777);

  opts = {};
  ASSERT_TRUE(Parse({"--worker-endpoints", "unix:/a.sock,9000", "in.fastq"},
                    &opts, &error))
      << error;
  EXPECT_EQ(opts.assembler.worker_endpoints, "unix:/a.sock,9000");

  // Distribution rides the streaming pipeline only.
  opts = {};
  EXPECT_FALSE(
      Parse({"--shard-workers", "2", "--in-memory", "in.fastq"}, &opts,
            &error));
  EXPECT_NE(error.find("--in-memory"), std::string::npos) << error;
}

TEST(AssembleCliParseTest, FaultPlanValidatedAtParseTime) {
  AssembleCliOptions opts;
  std::string error;
  ASSERT_TRUE(Parse({"--shard-workers", "2", "--fault-plan",
                     "seed=7,kill-worker@chunk=3@worker=0", "in.fastq"},
                    &opts, &error))
      << error;
  EXPECT_EQ(opts.assembler.fault_plan, "seed=7,kill-worker@chunk=3@worker=0");

  // A bad plan is a usage error here, not a throw deep inside fleet setup.
  opts = {};
  EXPECT_FALSE(Parse({"--fault-plan", "explode@frame=1", "in.fastq"}, &opts,
                     &error));
  EXPECT_NE(error.find("--fault-plan"), std::string::npos) << error;
}

TEST(AssembleCliRunTest, MissingInputFailsGracefully) {
  AssembleCliOptions opts;
  opts.inputs = {TempPath("does_not_exist.fastq")};
  std::ostringstream out, err;
  EXPECT_EQ(RunAssembleCli(opts, out, err), 1);
  EXPECT_NE(err.str().find("cannot open input"), std::string::npos);
}

/// Contig sequences of a FASTA file as a sorted multiset (order-insensitive
/// comparison between pipeline variants).
std::vector<std::string> SortedContigSeqs(const std::string& path) {
  std::vector<std::string> seqs;
  for (const Read& r : ParseFasta(ReadFile(path))) seqs.push_back(r.bases);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

// The acceptance property: ppa_assemble on an exported simulated FASTQ ==
// the in-memory pipeline on the same dataset, asserted on QUAST metrics.
TEST(AssembleCliRunTest, StreamedFileRunMatchesInMemoryPipeline) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.04);  // ~10 kbp genome
  const std::string prefix = TempPath("hc2_e2e");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);
  ASSERT_EQ(written.size(), 2u);

  AssembleCliOptions opts;
  opts.inputs = {written[0]};
  opts.reference = written[1];
  opts.contigs_out = TempPath("hc2_e2e.contigs.fasta");
  opts.stats_out = TempPath("hc2_e2e.stats.txt");
  opts.assembler.num_workers = 8;
  opts.assembler.num_threads = 2;
  opts.assembler.kmer_queue_bytes = 65536;  // small bound: force backpressure
  opts.stream.batch_reads = 100;
  std::ostringstream out, err;
  ASSERT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();

  // In-memory reference run with identical options.
  Assembler assembler(opts.assembler);
  AssemblyResult in_memory = assembler.Assemble(dataset.reads);
  QuastConfig quast_config;  // same min_contig default as the CLI
  QuastReport expected = EvaluateAssembly(in_memory.ContigStrings(),
                                          &dataset.reference, quast_config);

  std::vector<Read> cli_contigs = ParseFasta(ReadFile(opts.contigs_out));
  std::vector<std::string> cli_seqs;
  for (const Read& r : cli_contigs) cli_seqs.push_back(r.bases);
  QuastReport actual =
      EvaluateAssembly(cli_seqs, &dataset.reference, quast_config);

  EXPECT_EQ(actual.num_contigs, expected.num_contigs);
  EXPECT_EQ(actual.total_length, expected.total_length);
  EXPECT_EQ(actual.n50, expected.n50);
  EXPECT_EQ(actual.largest_contig, expected.largest_contig);
  EXPECT_EQ(actual.misassemblies, expected.misassemblies);
  EXPECT_DOUBLE_EQ(actual.genome_fraction, expected.genome_fraction);
  EXPECT_DOUBLE_EQ(actual.mismatches_per_100kbp,
                   expected.mismatches_per_100kbp);

  // Stronger: the contig sequence multiset is identical.
  std::vector<std::string> expected_seqs;
  for (const std::string& s : in_memory.ContigStrings()) {
    expected_seqs.push_back(s);
  }
  std::sort(expected_seqs.begin(), expected_seqs.end());
  EXPECT_EQ(SortedContigSeqs(opts.contigs_out), expected_seqs);

  // The stats report carries the streaming bound evidence and the shuffle
  // engine's combiner effectiveness (combining must have removed pairs).
  const std::string stats = ReadFile(opts.stats_out);
  EXPECT_NE(stats.find("mode=stream"), std::string::npos);
  EXPECT_NE(stats.find("shuffle: strategy=hash pairs_emitted="),
            std::string::npos)
      << stats;
  EXPECT_EQ(stats.find("combined_away=0\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("pass1=superkmer"), std::string::npos) << stats;
  EXPECT_NE(stats.find("peak_queued_bytes="), std::string::npos);
  EXPECT_NE(stats.find("n50="), std::string::npos);
  EXPECT_NE(stats.find("queue_bound_bytes=65536"), std::string::npos)
      << stats;
}

// The acceptance property of the pass-1 encodings: streaming ppa_assemble
// under --pass1-encoding raw and superkmer produces identical surviving-mer
// counts, identical contig multisets, and identical QUAST metrics — the
// superkmer run just ships fewer pass-1 bytes.
TEST(AssembleCliRunTest, Pass1EncodingsProduceIdenticalAssemblies) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.04);
  const std::string prefix = TempPath("hc2_pass1");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);

  auto run = [&](const char* encoding) {
    AssembleCliOptions opts;
    opts.inputs = {written[0]};
    opts.reference = written[1];
    opts.contigs_out =
        TempPath(std::string("hc2_pass1.") + encoding + ".fasta");
    opts.stats_out = TempPath(std::string("hc2_pass1.") + encoding + ".txt");
    opts.assembler.num_workers = 8;
    opts.assembler.num_threads = 2;
    EXPECT_TRUE(
        ParsePass1Encoding(encoding, &opts.assembler.pass1_encoding));
    std::ostringstream out, err;
    EXPECT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();
    return opts;
  };
  const AssembleCliOptions raw = run("raw");
  const AssembleCliOptions sk = run("superkmer");

  EXPECT_EQ(SortedContigSeqs(raw.contigs_out), SortedContigSeqs(sk.contigs_out));

  // Grep the per-encoding evidence out of the stats reports: identical
  // surviving/window counts, and a smaller pass-1 byte volume for superkmer.
  auto field = [](const std::string& stats, const std::string& key) {
    // The key is either mid-line (" reads=") or at line start ("reads=").
    size_t at = stats.find(" " + key + "=");
    if (at == std::string::npos) at = stats.find("\n" + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " missing in:\n" << stats;
    if (at == std::string::npos) return uint64_t{0};
    return static_cast<uint64_t>(
        std::stoull(stats.substr(at + key.size() + 2)));
  };
  const std::string raw_stats = ReadFile(raw.stats_out);
  const std::string sk_stats = ReadFile(sk.stats_out);
  EXPECT_NE(raw_stats.find("pass1=raw"), std::string::npos);
  EXPECT_NE(sk_stats.find("pass1=superkmer"), std::string::npos);
  EXPECT_EQ(field(raw_stats, "windows"), field(sk_stats, "windows"));
  EXPECT_EQ(field(raw_stats, "distinct"), field(sk_stats, "distinct"));
  EXPECT_EQ(field(raw_stats, "surviving"), field(sk_stats, "surviving"));
  EXPECT_EQ(field(raw_stats, "n50"), field(sk_stats, "n50"));
  EXPECT_LT(field(sk_stats, "pass1_bytes"), field(raw_stats, "pass1_bytes"));
}

// The spill acceptance property: `ppa_assemble --spill-mode always
// --memory-budget-bytes <tiny>` on the HC-2-sim dataset produces
// bit-identical contigs and counts to `--spill-mode never`, with peak
// resident chunk bytes held under the budget (asserted from the report).
TEST(AssembleCliRunTest, SpillAlwaysMatchesNeverUnderTinyBudget) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.04);
  const std::string prefix = TempPath("hc2_spill");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);
  constexpr uint64_t kBudget = 262144;

  auto run = [&](const char* mode) {
    AssembleCliOptions opts;
    opts.inputs = {written[0]};
    opts.reference = written[1];
    opts.contigs_out = TempPath(std::string("hc2_spill.") + mode + ".fasta");
    opts.stats_out = TempPath(std::string("hc2_spill.") + mode + ".txt");
    opts.assembler.num_workers = 8;
    opts.assembler.num_threads = 2;
    EXPECT_TRUE(ParseSpillMode(mode, &opts.assembler.spill_mode));
    if (opts.assembler.spill_mode != SpillMode::kNever) {
      opts.assembler.memory_budget_bytes = kBudget;
      opts.assembler.spill_dir = ::testing::TempDir();
    }
    std::ostringstream out, err;
    EXPECT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();
    return opts;
  };
  const AssembleCliOptions never = run("never");
  const AssembleCliOptions always = run("always");

  // Bit-identical contigs.
  EXPECT_EQ(SortedContigSeqs(always.contigs_out),
            SortedContigSeqs(never.contigs_out));

  auto field = [](const std::string& stats, const std::string& key) {
    // The key is either mid-line (" reads=") or at line start ("reads=").
    size_t at = stats.find(" " + key + "=");
    if (at == std::string::npos) at = stats.find("\n" + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " missing in:\n" << stats;
    if (at == std::string::npos) return uint64_t{0};
    return static_cast<uint64_t>(
        std::stoull(stats.substr(at + key.size() + 2)));
  };
  const std::string never_stats = ReadFile(never.stats_out);
  const std::string always_stats = ReadFile(always.stats_out);
  EXPECT_NE(always_stats.find("spill: mode=always"), std::string::npos);
  EXPECT_NE(never_stats.find("spill: mode=never"), std::string::npos);
  // Identical counting + assembly metrics.
  for (const char* key : {"windows", "distinct", "surviving", "n50",
                          "total_length", "pairs_shuffled"}) {
    EXPECT_EQ(field(always_stats, key), field(never_stats, key)) << key;
  }
  // The always run really spilled, replayed everything it spilled, and the
  // pipeline-wide peak of resident chunk bytes stayed under the budget.
  EXPECT_GT(field(always_stats, "spilled_chunks"), 0u);
  EXPECT_GT(field(always_stats, "spill_files"), 0u);
  EXPECT_EQ(field(always_stats, "readback_bytes"),
            field(always_stats, "spilled_bytes"));
  EXPECT_EQ(field(always_stats, "budget_bytes"), kBudget);
  EXPECT_LE(field(always_stats, "peak_resident_bytes"), kBudget);
  EXPECT_LE(field(always_stats, "peak_queued_bytes"),
            field(always_stats, "queue_bound_bytes"));
  EXPECT_LE(field(always_stats, "queue_bound_bytes"), kBudget);
  EXPECT_EQ(field(never_stats, "spilled_bytes"), 0u);
}

// The distributed acceptance property: ppa_assemble against a worker fleet
// produces bit-identical contigs and counting metrics to the in-process
// run on the same dataset — here over in-process servers on unix sockets
// (the spawned-process path is exercised by DistributedSpawnedWorkersRun
// and the CI smoke job).
TEST(AssembleCliRunTest, DistributedEndpointsMatchInProcess) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.04);
  const std::string prefix = TempPath("hc2_net");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);

  std::vector<std::unique_ptr<net::ShardWorkerServer>> servers;
  std::string endpoints;
  for (int w = 0; w < 2; ++w) {
    net::WorkerOptions options;
    options.listen = "unix:" + TempPath("hc2_net_w" + std::to_string(w)) +
                     ".sock";
    servers.push_back(std::make_unique<net::ShardWorkerServer>(options));
    std::string error;
    ASSERT_TRUE(servers.back()->Start(&error)) << error;
    if (!endpoints.empty()) endpoints += ',';
    endpoints += options.listen;
  }

  auto run = [&](const std::string& worker_endpoints, const char* tag) {
    AssembleCliOptions opts;
    opts.inputs = {written[0]};
    opts.contigs_out = TempPath(std::string("hc2_net.") + tag + ".fasta");
    opts.stats_out = TempPath(std::string("hc2_net.") + tag + ".txt");
    opts.assembler.num_workers = 8;
    opts.assembler.num_threads = 2;
    opts.assembler.worker_endpoints = worker_endpoints;
    std::ostringstream out, err;
    EXPECT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();
    return opts;
  };
  const AssembleCliOptions local = run("", "local");
  const AssembleCliOptions distributed = run(endpoints, "dist");
  for (auto& server : servers) server->Stop();

  EXPECT_EQ(SortedContigSeqs(distributed.contigs_out),
            SortedContigSeqs(local.contigs_out));

  auto field = [](const std::string& stats, const std::string& key) {
    // The key is either mid-line (" reads=") or at line start ("reads=").
    size_t at = stats.find(" " + key + "=");
    if (at == std::string::npos) at = stats.find("\n" + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " missing in:\n" << stats;
    if (at == std::string::npos) return uint64_t{0};
    return static_cast<uint64_t>(
        std::stoull(stats.substr(at + key.size() + 2)));
  };
  const std::string local_stats = ReadFile(local.stats_out);
  const std::string dist_stats = ReadFile(distributed.stats_out);
  for (const char* key : {"windows", "distinct", "surviving", "n50",
                          "total_length", "pairs_shuffled"}) {
    EXPECT_EQ(field(dist_stats, key), field(local_stats, key)) << key;
  }
  EXPECT_NE(dist_stats.find("net: workers=2"), std::string::npos)
      << dist_stats;
  EXPECT_NE(local_stats.find("net: workers=0"), std::string::npos)
      << local_stats;
  EXPECT_GT(field(dist_stats, "chunks"), 0u);
  EXPECT_GT(field(dist_stats, "sent_bytes"), 0u);
}

// The spawned-fleet path: --shard-workers forks real ppa_shard_worker
// processes (the binary sits next to this test binary in the build tree)
// and must produce the same contigs. Skipped when the binary is absent
// (non-standard build layouts).
TEST(AssembleCliRunTest, DistributedSpawnedWorkersRun) {
  std::string self(4096, '\0');
  const ssize_t n = readlink("/proc/self/exe", self.data(), self.size());
  ASSERT_GT(n, 0);
  self.resize(static_cast<size_t>(n));
  const std::string worker_binary =
      self.substr(0, self.rfind('/') + 1) + "ppa_shard_worker";
  if (!std::ifstream(worker_binary).good()) {
    GTEST_SKIP() << "ppa_shard_worker not found at " << worker_binary;
  }

  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.02);
  const std::string prefix = TempPath("hc2_spawn");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);

  auto run = [&](uint32_t workers, const char* tag) {
    AssembleCliOptions opts;
    opts.inputs = {written[0]};
    opts.contigs_out = TempPath(std::string("hc2_spawn.") + tag + ".fasta");
    opts.assembler.num_workers = 4;
    opts.assembler.num_threads = 2;
    opts.assembler.shard_workers = workers;
    opts.assembler.worker_binary = worker_binary;
    std::ostringstream out, err;
    EXPECT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();
    return opts;
  };
  const AssembleCliOptions local = run(0, "local");
  const AssembleCliOptions spawned = run(2, "spawned");
  EXPECT_EQ(SortedContigSeqs(spawned.contigs_out),
            SortedContigSeqs(local.contigs_out));
}

// The golden-schema property of --report-json and --trace-out: both files
// are valid JSON with the required keys, and every total in run.json equals
// the value printed in the legacy text report — they render one registry
// snapshot.
TEST(AssembleCliRunTest, ReportJsonAndTraceMatchTextReport) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.04);
  const std::string prefix = TempPath("hc2_obs");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);

  AssembleCliOptions opts;
  opts.inputs = {written[0]};
  opts.reference = written[1];
  opts.contigs_out = TempPath("hc2_obs.contigs.fasta");
  opts.stats_out = TempPath("hc2_obs.stats.txt");
  opts.report_json = TempPath("hc2_obs.run.json");
  opts.trace_out = TempPath("hc2_obs.trace.json");
  opts.assembler.num_workers = 8;
  opts.assembler.num_threads = 2;
  std::ostringstream out, err;
  ASSERT_EQ(RunAssembleCli(opts, out, err), 0) << err.str();

  auto field = [](const std::string& stats, const std::string& key) {
    // The key is either mid-line (" reads=") or at line start ("reads=").
    size_t at = stats.find(" " + key + "=");
    if (at == std::string::npos) at = stats.find("\n" + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " missing in:\n" << stats;
    if (at == std::string::npos) return uint64_t{0};
    return static_cast<uint64_t>(
        std::stoull(stats.substr(at + key.size() + 2)));
  };
  const std::string stats = ReadFile(opts.stats_out);

  JsonValue run;
  std::string error;
  ASSERT_TRUE(ParseJson(ReadFile(opts.report_json), &run, &error)) << error;
  ASSERT_NE(run.Find("schema"), nullptr);
  EXPECT_EQ(run.Find("schema")->str, "ppa.run_report.v1");
  EXPECT_EQ(run.Find("counting_mode")->str, "stream");
  EXPECT_EQ(run.Find("pass1_encoding")->str, "superkmer");
  EXPECT_EQ(run.Find("shuffle_strategy")->str, "hash");
  ASSERT_EQ(run.Find("inputs")->array.size(), 1u);
  EXPECT_EQ(run.Find("inputs")->array[0].str, written[0]);
  ASSERT_NE(run.Find("workers"), nullptr);  // present (empty: in-process)
  EXPECT_TRUE(run.Find("workers")->array.empty());

  const JsonValue* metrics = run.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  // Every JSON total equals the text report's value — one snapshot.
  const std::pair<const char*, const char*> kPairs[] = {
      {"ingest.reads", "reads"},
      {"ingest.bases", "bases"},
      {"counting.windows", "windows"},
      {"counting.distinct", "distinct"},
      {"counting.surviving", "surviving"},
      {"counting.pass1_bytes", "pass1_bytes"},
      {"shuffle.pairs_shuffled", "pairs_shuffled"},
      {"dbg.kmer_vertices", "kmer_vertices"},
      {"contigs.n50", "n50"},
      {"contigs.total_length", "total_length"},
  };
  for (const auto& [metric, key] : kPairs) {
    EXPECT_EQ(metrics->GetU64(metric), field(stats, key)) << metric;
  }
  // The live io.* counters saw the same stream the ingest totals did.
  EXPECT_EQ(metrics->GetU64("io.reads"), field(stats, "reads"));
  EXPECT_EQ(metrics->GetU64("io.bases"), field(stats, "bases"));

  JsonValue trace;
  ASSERT_TRUE(ParseJson(ReadFile(opts.trace_out), &trace, &error)) << error;
  const JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::vector<std::string> names;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    names.push_back(name->str);
  }
  for (const char* span : {"read_stream", "scan_batch", "count_chunk",
                           "map_phase", "reduce_phase", "contig_labeling",
                           "contig_merging"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), span), names.end())
        << span << " missing from trace";
  }
}

// The CLI's own in-memory mode must agree with its streaming mode.
TEST(AssembleCliRunTest, InMemoryModeMatchesStreamingMode) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.02);
  const std::string prefix = TempPath("hc2_modes");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);

  AssembleCliOptions stream_opts;
  stream_opts.inputs = {written[0]};
  stream_opts.contigs_out = TempPath("hc2_modes.stream.fasta");
  stream_opts.stats_out = TempPath("hc2_modes.stream.txt");
  stream_opts.assembler.num_workers = 4;
  stream_opts.assembler.num_threads = 2;
  std::ostringstream out, err;
  ASSERT_EQ(RunAssembleCli(stream_opts, out, err), 0) << err.str();

  AssembleCliOptions mem_opts = stream_opts;
  mem_opts.in_memory = true;
  mem_opts.assembler.sharded_kmer_counting = false;  // serial reference
  mem_opts.contigs_out = TempPath("hc2_modes.mem.fasta");
  mem_opts.stats_out = TempPath("hc2_modes.mem.txt");
  ASSERT_EQ(RunAssembleCli(mem_opts, out, err), 0) << err.str();

  EXPECT_EQ(SortedContigSeqs(stream_opts.contigs_out),
            SortedContigSeqs(mem_opts.contigs_out));
  EXPECT_NE(ReadFile(mem_opts.stats_out).find("mode=in-memory-serial"),
            std::string::npos);
}

}  // namespace
}  // namespace ppa
