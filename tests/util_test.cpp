// Tests for util/: varint, hashing, edit distance, text store, thread pool,
// RNG determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>

#include "util/edit_distance.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/text_store.h"
#include "util/thread_pool.h"
#include "util/varint.h"

namespace ppa {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,        127,        128,
                                  16383,   16384,    (1ULL << 32) - 1,
                                  1ULL << 32, UINT64_MAX};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) {
    EXPECT_EQ(PutVarint64(&buf, v), VarintLength(v));
  }
  size_t pos = 0;
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v = 0; v < 128; ++v) EXPECT_EQ(VarintLength(v), 1u);
  EXPECT_EQ(VarintLength(128), 2u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size(), &pos, &v));
}

// Every continuation-byte boundary: 2^(7k) needs one more byte than
// 2^(7k) - 1, for every k up to the 10-byte 64-bit ceiling. The super-k-mer
// record header (dna/superkmer.h) leans on these exact lengths.
TEST(VarintTest, ContinuationByteBoundaries) {
  for (int k = 1; k <= 9; ++k) {
    const uint64_t boundary = 1ULL << (7 * k);
    EXPECT_EQ(VarintLength(boundary - 1), static_cast<size_t>(k))
        << "k=" << k;
    EXPECT_EQ(VarintLength(boundary), static_cast<size_t>(k) + 1) << "k=" << k;
    for (uint64_t v : {boundary - 1, boundary, boundary + 1}) {
      std::vector<uint8_t> buf;
      EXPECT_EQ(PutVarint64(&buf, v), VarintLength(v));
      size_t pos = 0;
      uint64_t decoded = 0;
      ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
      EXPECT_EQ(decoded, v);
      EXPECT_EQ(pos, buf.size());
      // Each intermediate byte must carry the continuation bit; the last
      // must not.
      for (size_t i = 0; i + 1 < buf.size(); ++i) EXPECT_NE(buf[i] & 0x80, 0);
      EXPECT_EQ(buf.back() & 0x80, 0);
    }
  }
}

TEST(VarintTest, MaxValueUsesTenBytesAndRoundTrips) {
  std::vector<uint8_t> buf;
  EXPECT_EQ(VarintLength(UINT64_MAX), 10u);
  EXPECT_EQ(PutVarint64(&buf, UINT64_MAX), 10u);
  ASSERT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.back(), 0x01);  // bit 63 alone in the final byte
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_EQ(pos, 10u);
}

TEST(VarintTest, OverlongEncodingsAreRejected) {
  // Eleven continuation bytes: more than any 64-bit value can need.
  std::vector<uint8_t> overlong(11, 0x80);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(overlong.data(), overlong.size(), &pos, &v));
  EXPECT_EQ(pos, 0u);  // a failed decode must not advance the cursor

  // Ten continuation bytes then a terminator: also past the 64-bit ceiling.
  std::vector<uint8_t> eleven_bytes(10, 0x80);
  eleven_bytes.push_back(0x01);
  pos = 0;
  EXPECT_FALSE(
      GetVarint64(eleven_bytes.data(), eleven_bytes.size(), &pos, &v));
}

// The 10th byte of a maximal varint may carry bit 63 only. Any payload bit
// above it encodes a value >= 2^64; the old decoder shifted those bits out
// and returned a silently wrapped value — as a record length, that misframes
// every spill file and wire frame after it.
TEST(VarintTest, TenthBytePayloadBitsBeyondBit63AreRejected) {
  // Every set of excess payload bits in the 10th byte must fail.
  for (uint8_t tenth : {0x02, 0x04, 0x40, 0x7E, 0x7F, 0x03}) {
    std::vector<uint8_t> buf(9, 0xFF);
    buf.push_back(tenth);
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(buf.data(), buf.size(), &pos, &v))
        << "tenth byte 0x" << std::hex << int(tenth);
    EXPECT_EQ(pos, 0u);
  }
  // The two valid 10th bytes still decode: bit 63 set, or (non-canonical
  // but in-range) a bare terminator.
  std::vector<uint8_t> max(9, 0xFF);
  max.push_back(0x01);
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(max.data(), max.size(), &pos, &v));
  EXPECT_EQ(v, UINT64_MAX);

  std::vector<uint8_t> low63(9, 0xFF);
  low63.push_back(0x00);
  pos = 0;
  ASSERT_TRUE(GetVarint64(low63.data(), low63.size(), &pos, &v));
  EXPECT_EQ(v, UINT64_MAX >> 1);
}

TEST(VarintTest, DecodeStopsAtRecordBoundaries) {
  // Back-to-back records: the cursor must land exactly on each boundary,
  // the framing property text_store and the super-k-mer codec rely on.
  std::vector<uint8_t> buf;
  const std::vector<uint64_t> values = {0, 300, 127, UINT64_MAX, 1};
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t expected : values) {
    const size_t before = pos;
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
    EXPECT_EQ(v, expected);
    EXPECT_EQ(pos - before, VarintLength(expected));
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, ZigZag) {
  for (int64_t v : {0L, -1L, 1L, -64L, 63L, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(HashTest, Mix64IsBijectiveOnSamples) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, PartitionerBalancesSimilarKeys) {
  // k-mer ids share high zero bits; the partitioner must still balance.
  std::vector<int> counts(16, 0);
  for (uint64_t id = 0; id < 16000; ++id) {
    ++counts[PartitionOf(id, 16)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("ACGT", "ACGT"), 0u);
  EXPECT_EQ(EditDistance("ACGT", ""), 4u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("ACGT", "AGT"), 1u);
  EXPECT_EQ(EditDistance("ACGT", "TGCA"), 4u);
}

TEST(EditDistanceTest, BandedMatchesFullWithinLimit) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    size_t len = 5 + rng.Below(60);
    for (size_t i = 0; i < len; ++i) a += "ACGT"[rng.Next() & 3];
    b = a;
    size_t edits = rng.Below(8);
    for (size_t e = 0; e < edits && !b.empty(); ++e) {
      switch (rng.Below(3)) {
        case 0:
          b[rng.Below(b.size())] = "ACGT"[rng.Next() & 3];
          break;
        case 1:
          b.erase(rng.Below(b.size()), 1);
          break;
        default:
          b.insert(rng.Below(b.size() + 1), 1, "ACGT"[rng.Next() & 3]);
      }
    }
    size_t full = EditDistance(a, b);
    for (size_t limit : {2u, 5u, 10u}) {
      size_t banded = BandedEditDistance(a, b, limit);
      if (full <= limit) {
        EXPECT_EQ(banded, full) << a << " vs " << b;
      } else {
        EXPECT_EQ(banded, limit + 1) << a << " vs " << b;
      }
    }
  }
}

TEST(EditDistanceTest, WithinPredicate) {
  EXPECT_TRUE(WithinEditDistance("ACGTACGT", "ACGTACGA", 5));
  EXPECT_FALSE(WithinEditDistance("AAAAAAAA", "TTTTTTTT", 5));
  EXPECT_FALSE(WithinEditDistance("ACGT", "ACGT", 0));
}

TEST(TextStoreTest, WriteReadParts) {
  std::string dir = "/tmp/ppa_text_store_test";
  std::filesystem::remove_all(dir);
  TextStore store(dir);
  store.WritePart(0, {"line a", "line b"});
  store.WritePart(3, {"line c"});
  EXPECT_EQ(store.ListParts(), (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(store.ReadPart(3), (std::vector<std::string>{"line c"}));
  EXPECT_EQ(store.ReadPart(7), std::vector<std::string>{});
  EXPECT_EQ(store.ReadAll(),
            (std::vector<std::string>{"line a", "line b", "line c"}));
  EXPECT_GT(store.TotalBytes(), 0u);
  store.Clear();
  EXPECT_TRUE(store.ListParts().empty());
  std::filesystem::remove_all(dir);
}

TEST(ThreadPoolTest, RunsAllIndicesOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    pool.Run(100, [&](uint32_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.Below(10), 10u);
  }
}

}  // namespace
}  // namespace ppa
