// End-to-end integration tests: reads -> DBG -> label -> merge -> correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>

#include "core/assembler.h"
#include "core/dbg_construction.h"
#include "dna/read.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"
#include "util/logging.h"

namespace ppa {
namespace {

/// True iff `contig` occurs in `genome` on either strand.
bool IsGenomeSubstring(const std::string& contig, const std::string& genome,
                       const std::string& genome_rc) {
  return genome.find(contig) != std::string::npos ||
         genome_rc.find(contig) != std::string::npos;
}

AssemblerOptions SmallOptions(int k = 21) {
  AssemblerOptions options;
  options.k = k;
  options.coverage_threshold = 1;  // Error-free reads: keep everything.
  options.tip_length_threshold = 60;
  options.num_workers = 8;
  options.num_threads = 2;
  return options;
}

/// Error-free reads covering every position of the genome on both strands.
std::vector<Read> PerfectReads(const PackedSequence& genome, int read_len,
                               int stride = 3) {
  std::vector<Read> reads;
  std::string g = genome.ToString();
  std::string g_rc = genome.ReverseComplement().ToString();
  for (size_t pos = 0; pos + read_len <= g.size();
       pos += static_cast<size_t>(stride)) {
    reads.push_back(Read{"f" + std::to_string(pos),
                         g.substr(pos, read_len), ""});
    reads.push_back(Read{"r" + std::to_string(pos),
                         g_rc.substr(pos, read_len), ""});
  }
  return reads;
}

TEST(PipelineTest, RepeatFreeGenomeAssemblesToOneContig) {
  GenomeConfig config;
  config.length = 4000;
  config.repeat_families = 0;
  config.seed = 11;
  PackedSequence genome = GenerateGenome(config);

  AssemblerOptions options = SmallOptions();
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(PerfectReads(genome, 60));

  // A repeat-free genome's DBG is a single unambiguous path: one contig
  // covering the whole genome.
  ASSERT_EQ(result.contigs.size(), 1u);
  std::string contig = result.contigs[0].seq.ToString();
  std::string g = genome.ToString();
  std::string g_rc = genome.ReverseComplement().ToString();
  EXPECT_TRUE(contig == g || contig == g_rc)
      << "contig length " << contig.size() << " vs genome " << g.size();
}

TEST(PipelineTest, ContigsAreAlwaysGenomeSubstringsOnCleanReads) {
  GenomeConfig config;
  config.length = 8000;
  config.repeat_families = 3;
  config.repeat_length = 150;
  config.repeat_copies = 4;
  config.seed = 23;
  PackedSequence genome = GenerateGenome(config);
  std::string g = genome.ToString();
  std::string g_rc = genome.ReverseComplement().ToString();

  AssemblerOptions options = SmallOptions();
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(PerfectReads(genome, 60));

  ASSERT_GT(result.contigs.size(), 0u);
  for (const ContigRecord& c : result.contigs) {
    if (c.circular) continue;  // Circular contigs wrap; checked elsewhere.
    EXPECT_TRUE(IsGenomeSubstring(c.seq.ToString(), g, g_rc))
        << "contig of length " << c.seq.size() << " not found in genome";
  }
}

TEST(PipelineTest, BothLabelingMethodsProduceIdenticalContigSets) {
  GenomeConfig config;
  config.length = 6000;
  config.repeat_families = 2;
  config.repeat_length = 120;
  config.repeat_copies = 3;
  config.seed = 31;
  PackedSequence genome = GenerateGenome(config);
  std::vector<Read> reads = PerfectReads(genome, 60);

  AssemblerOptions options = SmallOptions();
  AssemblyResult lr =
      Assembler(options).Assemble(reads, LabelingMethod::kListRanking);
  AssemblyResult sv =
      Assembler(options).Assemble(reads, LabelingMethod::kSimplifiedSv);

  auto canonical_set = [](const AssemblyResult& r) {
    std::vector<std::string> seqs;
    for (const ContigRecord& c : r.contigs) {
      std::string s = c.seq.ToString();
      std::string rc = c.seq.ReverseComplement().ToString();
      seqs.push_back(std::min(s, rc));
    }
    std::sort(seqs.begin(), seqs.end());
    return seqs;
  };
  EXPECT_EQ(canonical_set(lr), canonical_set(sv));
}

TEST(PipelineTest, ErroneousReadsStillYieldGenomeConsistentContigs) {
  GenomeConfig gconfig;
  gconfig.length = 10000;
  gconfig.repeat_families = 2;
  gconfig.repeat_length = 120;
  gconfig.repeat_copies = 3;
  gconfig.seed = 5;
  PackedSequence genome = GenerateGenome(gconfig);
  std::string g = genome.ToString();
  std::string g_rc = genome.ReverseComplement().ToString();

  ReadSimConfig rconfig;
  rconfig.read_length = 80;
  rconfig.coverage = 40;
  rconfig.error_rate = 0.005;
  rconfig.seed = 99;
  std::vector<Read> reads = SimulateReads(genome, rconfig);

  AssemblerOptions options = SmallOptions();
  options.coverage_threshold = 2;  // Filter singleton (erroneous) mers.
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(reads);

  ASSERT_GT(result.contigs.size(), 0u);
  uint64_t total = 0;
  uint64_t matching = 0;
  for (const ContigRecord& c : result.contigs) {
    if (c.circular) continue;
    total += c.seq.size();
    if (IsGenomeSubstring(c.seq.ToString(), g, g_rc)) {
      matching += c.seq.size();
    }
  }
  // Error correction should leave the vast majority of contig bases exact.
  EXPECT_GT(total, genome.size() / 2);
  EXPECT_GT(static_cast<double>(matching),
            0.95 * static_cast<double>(total));
}

TEST(PipelineTest, TipsAndBubblesAreRemoved) {
  GenomeConfig gconfig;
  gconfig.length = 12000;
  gconfig.repeat_families = 0;
  gconfig.seed = 17;
  PackedSequence genome = GenerateGenome(gconfig);

  ReadSimConfig rconfig;
  rconfig.read_length = 80;
  rconfig.coverage = 50;
  rconfig.error_rate = 0.01;
  rconfig.seed = 3;
  std::vector<Read> reads = SimulateReads(genome, rconfig);

  AssemblerOptions options = SmallOptions();
  options.coverage_threshold = 2;
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(reads);

  // With errors at 1% and 50x coverage, error correction must fire.
  EXPECT_GT(result.kmer_vertices, 0u);
  // Second merge round grows contigs: N50 after round 2 >= after round 1.
  std::vector<uint64_t> round1(result.round1_contig_lengths.begin(),
                               result.round1_contig_lengths.end());
  std::vector<uint64_t> round2;
  for (const ContigRecord& c : result.contigs) round2.push_back(c.seq.size());
  auto n50 = [](std::vector<uint64_t> v) {
    std::sort(v.begin(), v.end(), std::greater<uint64_t>());
    uint64_t total = 0;
    for (auto x : v) total += x;
    uint64_t acc = 0;
    for (auto x : v) {
      acc += x;
      if (acc * 2 >= total) return x;
    }
    return v.empty() ? uint64_t{0} : v.back();
  };
  EXPECT_GE(n50(round2), n50(round1));
}

TEST(DbgConstructionTest, CoverageThresholdFiltersErrorMers) {
  GenomeConfig gconfig;
  gconfig.length = 5000;
  gconfig.repeat_families = 0;
  gconfig.seed = 41;
  PackedSequence genome = GenerateGenome(gconfig);

  ReadSimConfig rconfig;
  rconfig.read_length = 70;
  rconfig.coverage = 30;
  rconfig.error_rate = 0.01;
  rconfig.seed = 8;
  std::vector<Read> reads = SimulateReads(genome, rconfig);

  AssemblerOptions strict = SmallOptions();
  strict.coverage_threshold = 3;
  AssemblerOptions lax = SmallOptions();
  lax.coverage_threshold = 1;

  DbgResult strict_dbg = BuildDbg(reads, strict);
  DbgResult lax_dbg = BuildDbg(reads, lax);
  EXPECT_LT(strict_dbg.surviving_edge_mers, lax_dbg.surviving_edge_mers);
  EXPECT_EQ(strict_dbg.distinct_edge_mers, lax_dbg.distinct_edge_mers);
  EXPECT_LT(strict_dbg.graph.live_size(), lax_dbg.graph.live_size());
}

TEST(DbgConstructionTest, ReadsWithNsAreSplit) {
  // One 'N' in the middle: (k+1)-mers spanning it must not be produced.
  AssemblerOptions options = SmallOptions(5);
  std::vector<Read> reads = {
      {"r1", "ACGTACGTACGTNACGTACGTACGT", ""},
  };
  DbgResult dbg = BuildDbg(reads, options);
  // Each half is 12 long: 12 - 6 + 1 = 7 edge mers per half, with overlap
  // between halves' mer sets (identical halves) -> distinct canonical mers.
  EXPECT_GT(dbg.distinct_edge_mers, 0u);
  dbg.graph.ForEach([&](const AsmNode& node) {
    EXPECT_EQ(node.kind, NodeKind::kKmer);
  });
}

}  // namespace
}  // namespace ppa
