// Tests for obs/: the metrics registry under concurrency (run under TSan
// in CI), telemetry wire round-trips, trace JSON shape, the run-report
// publication, and the strict JSON parser the goldens rely on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/varint.h"

namespace ppa {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test.counter");
  obs::Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(3);
  registry.ResetValues();
  EXPECT_EQ(a->Value(), 0u);
  // Registration survives the reset: same pointer, zeroed value.
  EXPECT_EQ(registry.GetCounter("test.counter"), a);
}

TEST(MetricsRegistryTest, ConcurrentAddsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("race.counter");
  obs::Gauge* peak = registry.GetGauge("race.peak");
  obs::Histogram* histogram = registry.GetHistogram("race.histogram");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        peak->SetMax(t * kPerThread + i);
        histogram->Observe(i);
        // Concurrent find-or-create of the same name must be safe too.
        registry.GetCounter("race.latecomer")->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(peak->Value(), (kThreads - 1) * kPerThread + kPerThread - 1);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_EQ(registry.GetCounter("race.latecomer")->Value(),
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotExpandsHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.counter")->Add(7);
  registry.GetGauge("b.gauge")->Set(11);
  obs::Histogram* h = registry.GetHistogram("c.histogram");
  for (uint64_t v : {1, 2, 4, 1000}) h->Observe(v);
  const std::vector<obs::MetricValue> snapshot = registry.Snapshot();
  const obs::SnapshotView view(snapshot);
  EXPECT_EQ(view.Get("a.counter"), 7u);
  EXPECT_EQ(view.Get("b.gauge"), 11u);
  EXPECT_EQ(view.Get("c.histogram.count"), 4u);
  EXPECT_EQ(view.Get("c.histogram.sum"), 1007u);
  EXPECT_GE(view.Get("c.histogram.p99"), 1000u);
  EXPECT_EQ(view.Get("never.registered"), 0u);
  // Snapshots are ordered by registered metric name; the histogram's
  // derived entries (.count/.sum/.p50/.p99) stay adjacent under its name.
  std::vector<std::string> names;
  for (const obs::MetricValue& v : snapshot) names.push_back(v.name);
  const std::vector<std::string> expected = {
      "a.counter",         "b.gauge",           "c.histogram.count",
      "c.histogram.sum",   "c.histogram.p50",   "c.histogram.p99"};
  EXPECT_EQ(names, expected);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  obs::Histogram h;
  h.Observe(0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(900);  // bucket [512, 1024)
  EXPECT_EQ(h.Quantile(0.5), 1023u);
  EXPECT_EQ(h.Quantile(0.99), 1023u);
  h.Observe(1u << 20);
  EXPECT_EQ(h.Quantile(0.5), 1023u);  // median unchanged by one outlier
}

TEST(TelemetryTest, EncodeDecodeRoundTrip) {
  std::vector<obs::MetricValue> metrics;
  metrics.push_back({"worker.frames_served", obs::MetricKind::kCounter, 42});
  metrics.push_back({"worker.chunk_bytes", obs::MetricKind::kCounter,
                     (1ULL << 40) + 17});
  metrics.push_back({"mem.resident_bytes", obs::MetricKind::kGauge, 0});
  std::vector<uint8_t> wire;
  obs::EncodeTelemetry(metrics, &wire);
  std::vector<obs::MetricValue> decoded;
  std::string error;
  ASSERT_TRUE(obs::DecodeTelemetry(wire.data(), wire.size(), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.size(), metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(decoded[i].name, metrics[i].name);
    EXPECT_EQ(decoded[i].kind, metrics[i].kind);
    EXPECT_EQ(decoded[i].value, metrics[i].value);
  }
}

TEST(TelemetryTest, DecodeRejectsTruncation) {
  std::vector<obs::MetricValue> metrics;
  metrics.push_back({"worker.connections", obs::MetricKind::kCounter, 3});
  std::vector<uint8_t> wire;
  obs::EncodeTelemetry(metrics, &wire);
  std::string error;
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<obs::MetricValue> decoded;
    error.clear();
    EXPECT_FALSE(
        obs::DecodeTelemetry(wire.data(), cut, &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(TelemetryTest, SnapshotGetFallsBack) {
  obs::TelemetrySnapshot snap;
  snap.metrics.push_back({"worker.connections", obs::MetricKind::kCounter, 2});
  EXPECT_EQ(snap.Get("worker.connections"), 2u);
  EXPECT_EQ(snap.Get("worker.frames_served"), 0u);
  EXPECT_EQ(snap.Get("worker.frames_served", 99), 99u);
}

TEST(TraceTest, SpansAppearInJson) {
  obs::StartTrace();
  obs::SetTraceThreadName("obs-test");
  {
    PPA_TRACE_SPAN("outer_span", "test");
    PPA_TRACE_SPAN_V("inner_span", "test", 1234);
  }
  std::thread other([] {
    PPA_TRACE_SPAN("other_thread_span", "test");
  });
  other.join();
  obs::StopTrace();
  std::ostringstream out;
  obs::WriteTraceJson(out);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_outer = false, saw_inner = false, saw_other = false;
  uint64_t inner_tid = 0, other_tid = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "outer_span") saw_outer = true;
    if (name->str == "inner_span") {
      saw_inner = true;
      inner_tid = e.GetU64("tid");
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->GetU64("v"), 1234u);
    }
    if (name->str == "other_thread_span") {
      saw_other = true;
      other_tid = e.GetU64("tid");
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_other);
  // Distinct threads get distinct tracks.
  EXPECT_NE(inner_tid, other_tid);
}

TEST(TraceSnapshotTest, RoundTripsAndAppliesTheShift) {
  obs::StartTrace();
  obs::SetTraceThreadName("snap-test");
  {
    PPA_TRACE_SPAN("snap_outer", "test");
    PPA_TRACE_SPAN_V("snap_inner", "test", 77);
  }
  obs::StopTrace();
  std::vector<uint8_t> plain, shifted, negative;
  obs::EncodeTraceSnapshot(&plain);
  obs::EncodeTraceSnapshot(&shifted, 123456);
  obs::EncodeTraceSnapshot(&negative, -(1ll << 40));
  obs::ProcessTrace a, b, c;
  std::string error;
  ASSERT_TRUE(obs::DecodeTraceSnapshot(plain.data(), plain.size(), &a, &error))
      << error;
  ASSERT_TRUE(
      obs::DecodeTraceSnapshot(shifted.data(), shifted.size(), &b, &error))
      << error;
  ASSERT_TRUE(
      obs::DecodeTraceSnapshot(negative.data(), negative.size(), &c, &error))
      << error;
  ASSERT_EQ(a.events.size(), 2u);
  ASSERT_EQ(b.events.size(), 2u);
  bool saw_inner = false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].name, b.events[i].name);
    // The shift lands on every start timestamp, nothing else.
    EXPECT_EQ(b.events[i].start_us - a.events[i].start_us, 123456);
    EXPECT_EQ(b.events[i].dur_us, a.events[i].dur_us);
    if (a.events[i].name == "snap_inner") {
      saw_inner = true;
      EXPECT_EQ(a.events[i].category, "test");
      ASSERT_TRUE(a.events[i].has_arg);
      EXPECT_EQ(a.events[i].arg, 77u);
    }
  }
  EXPECT_TRUE(saw_inner);
  // A large negative shift (a worker clock far behind) survives zigzag.
  EXPECT_LT(c.events[0].start_us, 0);
  bool saw_thread_name = false;
  for (const auto& entry : a.thread_names) {
    if (entry.second == "snap-test") saw_thread_name = true;
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_EQ(a.dropped, 0u);
}

TEST(TraceSnapshotTest, DecodeRejectsTruncationAndTrailingBytes) {
  obs::StartTrace();
  { PPA_TRACE_SPAN_V("trunc_span", "test", 5); }
  obs::StopTrace();
  std::vector<uint8_t> wire;
  obs::EncodeTraceSnapshot(&wire);
  std::string error;
  // Every proper prefix must fail cleanly — these bytes come off a socket.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    obs::ProcessTrace decoded;
    error.clear();
    EXPECT_FALSE(obs::DecodeTraceSnapshot(wire.data(), cut, &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
  }
  obs::ProcessTrace decoded;
  ASSERT_TRUE(
      obs::DecodeTraceSnapshot(wire.data(), wire.size(), &decoded, &error))
      << error;
  wire.push_back(0);
  EXPECT_FALSE(
      obs::DecodeTraceSnapshot(wire.data(), wire.size(), &decoded, &error));
}

TEST(TraceSnapshotTest, DecodeRejectsBadHasArgByte) {
  // Hand-built snapshot: no thread names, one event, has_arg out of range.
  std::vector<uint8_t> wire;
  PutVarint64(&wire, 0);  // thread-name count
  PutVarint64(&wire, 1);  // event count
  PutVarint64(&wire, 1);
  wire.push_back('x');  // name
  PutVarint64(&wire, 1);
  wire.push_back('t');  // category
  PutVarint64(&wire, 3);                // tid
  PutVarint64(&wire, ZigZagEncode(10));  // start_us
  PutVarint64(&wire, 2);                // dur_us
  const size_t has_arg_at = wire.size();
  wire.push_back(2);      // has_arg must be 0 or 1
  PutVarint64(&wire, 0);  // dropped
  obs::ProcessTrace decoded;
  std::string error;
  EXPECT_FALSE(
      obs::DecodeTraceSnapshot(wire.data(), wire.size(), &decoded, &error));
  wire[has_arg_at] = 0;
  ASSERT_TRUE(
      obs::DecodeTraceSnapshot(wire.data(), wire.size(), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.events.size(), 1u);
  EXPECT_EQ(decoded.events[0].name, "x");
  EXPECT_EQ(decoded.events[0].start_us, 10);
  EXPECT_FALSE(decoded.events[0].has_arg);
}

TEST(TraceJsonTest, MergedTimelineCorrectsOffsetsOntoWorkerPids) {
  obs::StartTrace();  // fresh, empty local session: only remote tracks
  obs::StopTrace();
  obs::ProcessTrace worker;
  worker.label = "unix:/tmp/w0.sock";
  worker.clock_offset_us = 1000;
  worker.thread_names.emplace_back(7, "srv");
  obs::RemoteTraceEvent span;
  span.name = "remote_span";
  span.category = "worker";
  span.tid = 7;
  span.start_us = 1500;
  span.dur_us = 10;
  span.arg = 64;
  span.has_arg = true;
  worker.events.push_back(span);
  obs::RemoteTraceEvent early;
  early.name = "early_span";
  early.category = "worker";
  early.tid = 7;
  early.start_us = 200;  // corrected to -800: clamps to 0, never negative
  early.dur_us = 5;
  worker.events.push_back(early);
  worker.dropped = 3;

  std::ostringstream out;
  obs::WriteTraceJson(out, {worker});
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.GetU64("ppaDroppedEvents"), 3u);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_span = false, saw_early = false, saw_process_name = false,
       saw_thread_name = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "remote_span") {
      saw_span = true;
      EXPECT_EQ(e.GetU64("pid"), 2u);  // first remote process: pid 2
      EXPECT_EQ(e.GetU64("tid"), 7u);
      EXPECT_EQ(e.GetU64("ts"), 500u);  // 1500 - offset 1000
      EXPECT_EQ(e.GetU64("dur"), 10u);
      EXPECT_EQ(e.Find("args")->GetU64("v"), 64u);
    }
    if (name->str == "early_span") {
      saw_early = true;
      EXPECT_EQ(e.GetU64("ts"), 0u);
    }
    if (name->str == "process_name" && e.GetU64("pid") == 2u) {
      saw_process_name = true;
      EXPECT_EQ(e.Find("args")->Find("name")->str,
                "worker unix:/tmp/w0.sock");
    }
    if (name->str == "thread_name" && e.GetU64("pid") == 2u &&
        e.GetU64("tid") == 7u) {
      saw_thread_name = true;
      EXPECT_EQ(e.Find("args")->Find("name")->str, "srv");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
}

TEST(PrometheusTest, RendersTypesMangledNamesAndWorkerLabels) {
  // Name-sorted, as MetricsRegistry::Snapshot delivers: the per-worker
  // samples sit adjacent, so their shared family gets one TYPE line.
  std::vector<obs::MetricValue> snapshot;
  snapshot.push_back({"mem.resident_bytes", obs::MetricKind::kGauge, 9});
  snapshot.push_back({"net.chunks", obs::MetricKind::kCounter, 5});
  snapshot.push_back({"net.worker.unix:/tmp/w0.sock.frames_served",
                      obs::MetricKind::kCounter, 7});
  snapshot.push_back({"net.worker.unix:/tmp/w1.sock.frames_served",
                      obs::MetricKind::kCounter, 8});
  snapshot.push_back({"net.workers", obs::MetricKind::kGauge, 2});
  const std::string expected =
      "# TYPE ppa_mem_resident_bytes gauge\n"
      "ppa_mem_resident_bytes 9\n"
      "# TYPE ppa_net_chunks counter\n"
      "ppa_net_chunks 5\n"
      "# TYPE ppa_net_worker_frames_served counter\n"
      "ppa_net_worker_frames_served{worker=\"unix:/tmp/w0.sock\"} 7\n"
      "ppa_net_worker_frames_served{worker=\"unix:/tmp/w1.sock\"} 8\n"
      "# TYPE ppa_net_workers gauge\n"
      "ppa_net_workers 2\n";
  EXPECT_EQ(obs::RenderPrometheus(snapshot), expected);
}

TEST(PrometheusTest, EscapesLabelValuesAndLeavesShortNamesAlone) {
  std::vector<obs::MetricValue> snapshot;
  // A quote or backslash in an endpoint must not break the exposition.
  snapshot.push_back(
      {"net.worker.host\"x\\y.unacked_bytes", obs::MetricKind::kGauge, 1});
  // "net.workers" has no endpoint segment: no label transform.
  snapshot.push_back({"net.workers", obs::MetricKind::kGauge, 3});
  const std::string out = obs::RenderPrometheus(snapshot);
  EXPECT_NE(
      out.find(
          "ppa_net_worker_unacked_bytes{worker=\"host\\\"x\\\\y\"} 1\n"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("ppa_net_workers 3\n"), std::string::npos) << out;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  // Tracing off (the default): spans must be inert, and a later trace must
  // not see them.
  { PPA_TRACE_SPAN("ghost_span", "test"); }
  obs::StartTrace();
  obs::StopTrace();
  std::ostringstream out;
  obs::WriteTraceJson(out);
  EXPECT_EQ(out.str().find("ghost_span"), std::string::npos);
}

TEST(RunReportTest, JsonCarriesSnapshotAndWorkers) {
  obs::MetricsRegistry registry;
  registry.GetGauge("dbg.kmer_vertices")->Set(123);
  registry.GetCounter("io.reads")->Add(456);
  const obs::SnapshotView snapshot(registry.Snapshot());

  obs::RunReportInfo info;
  info.inputs = {"a.fastq", "b.fastq"};
  info.counting_mode = "stream";
  info.pass1_encoding = "superkmer";
  info.shuffle_strategy = "hash";
  info.spill_mode = "never";
  info.wall_seconds = 1.5;
  obs::TelemetrySnapshot worker;
  worker.source = "unix:/tmp/w0.sock";
  worker.metrics.push_back(
      {"worker.frames_served", obs::MetricKind::kCounter, 9});
  info.workers.push_back(worker);

  std::ostringstream out;
  obs::WriteRunReportJson(out, snapshot, info);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->str, "ppa.run_report.v1");
  EXPECT_EQ(doc.Find("inputs")->array.size(), 2u);
  EXPECT_EQ(doc.Find("counting_mode")->str, "stream");
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetU64("dbg.kmer_vertices"), 123u);
  EXPECT_EQ(metrics->GetU64("io.reads"), 456u);
  const JsonValue* workers = doc.Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array.size(), 1u);
  EXPECT_EQ(workers->array[0].Find("endpoint")->str, "unix:/tmp/w0.sock");
  EXPECT_EQ(workers->array[0].Find("metrics")->GetU64("worker.frames_served"),
            9u);
}

TEST(JsonParserTest, AcceptsTheWriterAndRejectsGarbage) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(ParseJson(R"({"a": [1, 2.5, "x\n", true, null], "b": {}})",
                        &doc, &error))
      << error;
  EXPECT_EQ(doc.Find("a")->array.size(), 5u);
  EXPECT_EQ(doc.Find("a")->array[2].str, "x\n");

  for (const char* bad : {"{", "[1,]", "{\"a\":}", "{} trailing", "{'a':1}",
                          "{\"a\":1,}", "nul", ""}) {
    JsonValue v;
    error.clear();
    EXPECT_FALSE(ParseJson(bad, &v, &error)) << bad;
  }
  // Exact 64-bit integers survive via the raw token.
  EXPECT_TRUE(ParseJson("{\"big\": 18446744073709551615}", &doc, &error));
  EXPECT_EQ(doc.GetU64("big"), UINT64_MAX);
}

}  // namespace
}  // namespace ppa
