// Tests for obs/: the metrics registry under concurrency (run under TSan
// in CI), telemetry wire round-trips, trace JSON shape, the run-report
// publication, and the strict JSON parser the goldens rely on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/json.h"

namespace ppa {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test.counter");
  obs::Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(3);
  registry.ResetValues();
  EXPECT_EQ(a->Value(), 0u);
  // Registration survives the reset: same pointer, zeroed value.
  EXPECT_EQ(registry.GetCounter("test.counter"), a);
}

TEST(MetricsRegistryTest, ConcurrentAddsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("race.counter");
  obs::Gauge* peak = registry.GetGauge("race.peak");
  obs::Histogram* histogram = registry.GetHistogram("race.histogram");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        peak->SetMax(t * kPerThread + i);
        histogram->Observe(i);
        // Concurrent find-or-create of the same name must be safe too.
        registry.GetCounter("race.latecomer")->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(peak->Value(), (kThreads - 1) * kPerThread + kPerThread - 1);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_EQ(registry.GetCounter("race.latecomer")->Value(),
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotExpandsHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.counter")->Add(7);
  registry.GetGauge("b.gauge")->Set(11);
  obs::Histogram* h = registry.GetHistogram("c.histogram");
  for (uint64_t v : {1, 2, 4, 1000}) h->Observe(v);
  const std::vector<obs::MetricValue> snapshot = registry.Snapshot();
  const obs::SnapshotView view(snapshot);
  EXPECT_EQ(view.Get("a.counter"), 7u);
  EXPECT_EQ(view.Get("b.gauge"), 11u);
  EXPECT_EQ(view.Get("c.histogram.count"), 4u);
  EXPECT_EQ(view.Get("c.histogram.sum"), 1007u);
  EXPECT_GE(view.Get("c.histogram.p99"), 1000u);
  EXPECT_EQ(view.Get("never.registered"), 0u);
  // Snapshots are ordered by registered metric name; the histogram's
  // derived entries (.count/.sum/.p50/.p99) stay adjacent under its name.
  std::vector<std::string> names;
  for (const obs::MetricValue& v : snapshot) names.push_back(v.name);
  const std::vector<std::string> expected = {
      "a.counter",         "b.gauge",           "c.histogram.count",
      "c.histogram.sum",   "c.histogram.p50",   "c.histogram.p99"};
  EXPECT_EQ(names, expected);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  obs::Histogram h;
  h.Observe(0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(900);  // bucket [512, 1024)
  EXPECT_EQ(h.Quantile(0.5), 1023u);
  EXPECT_EQ(h.Quantile(0.99), 1023u);
  h.Observe(1u << 20);
  EXPECT_EQ(h.Quantile(0.5), 1023u);  // median unchanged by one outlier
}

TEST(TelemetryTest, EncodeDecodeRoundTrip) {
  std::vector<obs::MetricValue> metrics;
  metrics.push_back({"worker.frames_served", obs::MetricKind::kCounter, 42});
  metrics.push_back({"worker.chunk_bytes", obs::MetricKind::kCounter,
                     (1ULL << 40) + 17});
  metrics.push_back({"mem.resident_bytes", obs::MetricKind::kGauge, 0});
  std::vector<uint8_t> wire;
  obs::EncodeTelemetry(metrics, &wire);
  std::vector<obs::MetricValue> decoded;
  std::string error;
  ASSERT_TRUE(obs::DecodeTelemetry(wire.data(), wire.size(), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.size(), metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(decoded[i].name, metrics[i].name);
    EXPECT_EQ(decoded[i].kind, metrics[i].kind);
    EXPECT_EQ(decoded[i].value, metrics[i].value);
  }
}

TEST(TelemetryTest, DecodeRejectsTruncation) {
  std::vector<obs::MetricValue> metrics;
  metrics.push_back({"worker.connections", obs::MetricKind::kCounter, 3});
  std::vector<uint8_t> wire;
  obs::EncodeTelemetry(metrics, &wire);
  std::string error;
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<obs::MetricValue> decoded;
    error.clear();
    EXPECT_FALSE(
        obs::DecodeTelemetry(wire.data(), cut, &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(TelemetryTest, SnapshotGetFallsBack) {
  obs::TelemetrySnapshot snap;
  snap.metrics.push_back({"worker.connections", obs::MetricKind::kCounter, 2});
  EXPECT_EQ(snap.Get("worker.connections"), 2u);
  EXPECT_EQ(snap.Get("worker.frames_served"), 0u);
  EXPECT_EQ(snap.Get("worker.frames_served", 99), 99u);
}

TEST(TraceTest, SpansAppearInJson) {
  obs::StartTrace();
  obs::SetTraceThreadName("obs-test");
  {
    PPA_TRACE_SPAN("outer_span", "test");
    PPA_TRACE_SPAN_V("inner_span", "test", 1234);
  }
  std::thread other([] {
    PPA_TRACE_SPAN("other_thread_span", "test");
  });
  other.join();
  obs::StopTrace();
  std::ostringstream out;
  obs::WriteTraceJson(out);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_outer = false, saw_inner = false, saw_other = false;
  uint64_t inner_tid = 0, other_tid = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "outer_span") saw_outer = true;
    if (name->str == "inner_span") {
      saw_inner = true;
      inner_tid = e.GetU64("tid");
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->GetU64("v"), 1234u);
    }
    if (name->str == "other_thread_span") {
      saw_other = true;
      other_tid = e.GetU64("tid");
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_other);
  // Distinct threads get distinct tracks.
  EXPECT_NE(inner_tid, other_tid);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  // Tracing off (the default): spans must be inert, and a later trace must
  // not see them.
  { PPA_TRACE_SPAN("ghost_span", "test"); }
  obs::StartTrace();
  obs::StopTrace();
  std::ostringstream out;
  obs::WriteTraceJson(out);
  EXPECT_EQ(out.str().find("ghost_span"), std::string::npos);
}

TEST(RunReportTest, JsonCarriesSnapshotAndWorkers) {
  obs::MetricsRegistry registry;
  registry.GetGauge("dbg.kmer_vertices")->Set(123);
  registry.GetCounter("io.reads")->Add(456);
  const obs::SnapshotView snapshot(registry.Snapshot());

  obs::RunReportInfo info;
  info.inputs = {"a.fastq", "b.fastq"};
  info.counting_mode = "stream";
  info.pass1_encoding = "superkmer";
  info.shuffle_strategy = "hash";
  info.spill_mode = "never";
  info.wall_seconds = 1.5;
  obs::TelemetrySnapshot worker;
  worker.source = "unix:/tmp/w0.sock";
  worker.metrics.push_back(
      {"worker.frames_served", obs::MetricKind::kCounter, 9});
  info.workers.push_back(worker);

  std::ostringstream out;
  obs::WriteRunReportJson(out, snapshot, info);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->str, "ppa.run_report.v1");
  EXPECT_EQ(doc.Find("inputs")->array.size(), 2u);
  EXPECT_EQ(doc.Find("counting_mode")->str, "stream");
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetU64("dbg.kmer_vertices"), 123u);
  EXPECT_EQ(metrics->GetU64("io.reads"), 456u);
  const JsonValue* workers = doc.Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array.size(), 1u);
  EXPECT_EQ(workers->array[0].Find("endpoint")->str, "unix:/tmp/w0.sock");
  EXPECT_EQ(workers->array[0].Find("metrics")->GetU64("worker.frames_served"),
            9u);
}

TEST(JsonParserTest, AcceptsTheWriterAndRejectsGarbage) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(ParseJson(R"({"a": [1, 2.5, "x\n", true, null], "b": {}})",
                        &doc, &error))
      << error;
  EXPECT_EQ(doc.Find("a")->array.size(), 5u);
  EXPECT_EQ(doc.Find("a")->array[2].str, "x\n");

  for (const char* bad : {"{", "[1,]", "{\"a\":}", "{} trailing", "{'a':1}",
                          "{\"a\":1,}", "nul", ""}) {
    JsonValue v;
    error.clear();
    EXPECT_FALSE(ParseJson(bad, &v, &error)) << bad;
  }
  // Exact 64-bit integers survive via the raw token.
  EXPECT_TRUE(ParseJson("{\"big\": 18446744073709551615}", &doc, &error));
  EXPECT_EQ(doc.GetU64("big"), UINT64_MAX);
}

}  // namespace
}  // namespace ppa
