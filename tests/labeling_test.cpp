// Tests for contig labeling (operation 2): end recognition, bidirectional
// list ranking, the cycle fallback, and LR/S-V agreement.
#include "core/contig_labeling.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "core/dbg_construction.h"
#include "dna/read.h"
#include "util/random.h"

namespace ppa {
namespace {

AssemblerOptions TestOptions(int k = 5) {
  AssemblerOptions options;
  options.k = k;
  options.coverage_threshold = 1;
  options.num_workers = 4;
  options.num_threads = 2;
  return options;
}

/// DBG from explicit read strings.
AssemblyGraph GraphFrom(const std::vector<std::string>& read_strs,
                        const AssemblerOptions& options) {
  std::vector<Read> reads;
  for (size_t i = 0; i < read_strs.size(); ++i) {
    reads.push_back(Read{"r" + std::to_string(i), read_strs[i], ""});
  }
  DbgResult dbg = BuildDbg(reads, options);
  return std::move(dbg.graph);
}

size_t DistinctLabels(const LabelingResult& result) {
  std::unordered_set<uint64_t> labels;
  for (const auto& [id, label] : result.labels) labels.insert(label);
  return labels.size();
}

TEST(LabelingTest, SinglePathGetsOneLabel) {
  AssemblerOptions options = TestOptions();
  // One linear read: all k-mers unambiguous, one path.
  AssemblyGraph graph = GraphFrom({"AGGCTGCAACTCATCGACTCTATGT"}, options);
  ASSERT_GT(graph.live_size(), 0u);

  for (LabelingMethod method :
       {LabelingMethod::kListRanking, LabelingMethod::kSimplifiedSv}) {
    LabelingResult result = LabelContigs(graph, options, method);
    EXPECT_EQ(result.num_ambiguous, 0u) << LabelingMethodName(method);
    EXPECT_EQ(result.labels.size(), graph.live_size());
    EXPECT_EQ(DistinctLabels(result), 1u);
  }
}

TEST(LabelingTest, ForkSplitsPaths) {
  AssemblerOptions options = TestOptions();
  // Two reads sharing a prefix: the junction k-mer becomes ambiguous.
  AssemblyGraph graph = GraphFrom(
      {"ACGTTGCATGGAT", "ACGTTGCATACCA"}, options);

  LabelingResult result =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  EXPECT_GT(result.num_ambiguous, 0u);
  EXPECT_GT(DistinctLabels(result), 1u);
  // Ambiguous vertices carry no label.
  graph.ForEach([&](const AsmNode& node) {
    if (!node.IsUnambiguousPathNode()) {
      EXPECT_EQ(result.labels.count(node.id), 0u);
    }
  });
}

TEST(LabelingTest, LrAndSvAgreeOnGrouping) {
  AssemblerOptions options = TestOptions();
  AssemblyGraph graph = GraphFrom(
      {"ACGTTGCATGGATCCTAGGG", "ACGTTGCATACCATTTGACG",
       "TTGACGGGATCCTAGGGCAT"},
      options);

  LabelingResult lr =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  LabelingResult sv =
      LabelContigs(graph, options, LabelingMethod::kSimplifiedSv);

  ASSERT_EQ(lr.labels.size(), sv.labels.size());
  // The label *values* differ (LR: min end id; SV: min id) but the induced
  // partitions must be identical.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> lr_groups;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> sv_groups;
  for (const auto& [id, label] : lr.labels) lr_groups[label].insert(id);
  for (const auto& [id, label] : sv.labels) sv_groups[label].insert(id);
  ASSERT_EQ(lr_groups.size(), sv_groups.size());
  for (const auto& [label, members] : lr_groups) {
    // Find the SV group of any member; must be identical.
    uint64_t sv_label = sv.labels.at(*members.begin());
    EXPECT_EQ(sv_groups.at(sv_label), members);
  }
}

TEST(LabelingTest, PureCycleFallsBackToSv) {
  AssemblerOptions options = TestOptions(3);
  // A circular sequence: take a string whose DBG is one cycle. Repeating
  // the circle twice makes every 4-mer of the circle appear.
  // Circle: "ACGGTA" (len 6); reads cover it cyclically.
  AssemblyGraph graph = GraphFrom({"ACGGTAACGGTAAC"}, options);
  LabelingResult result =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  // Either the graph has ambiguity (depending on k) or a cycle was found
  // and labeled via the fallback. All unambiguous vertices must be labeled.
  graph.ForEach([&](const AsmNode& node) {
    if (node.IsUnambiguousPathNode()) {
      EXPECT_EQ(result.labels.count(node.id), 1u);
    }
  });
  if (result.num_cycle_vertices > 0) {
    EXPECT_GT(result.cycle_sv_stats.num_supersteps(), 0u);
  }
}

TEST(LabelingTest, LrBeatsSvOnSuperstepsAndMessages) {
  AssemblerOptions options = TestOptions();
  options.num_workers = 8;
  // A long single path stresses the round counts.
  std::string genome;
  Rng rng(12);
  for (int i = 0; i < 3000; ++i) genome += CharFromBase(rng.Next() & 3);
  AssemblyGraph graph = GraphFrom({genome}, options);

  LabelingResult lr =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  LabelingResult sv =
      LabelContigs(graph, options, LabelingMethod::kSimplifiedSv);
  // Table II shape.
  EXPECT_LT(lr.total_supersteps(), sv.total_supersteps());
  EXPECT_LT(lr.total_messages(), sv.total_messages());
  // O(log n) supersteps: 2 endrec + 2 per round.
  EXPECT_LE(lr.total_supersteps(), 2u + 2u * 16u);
}

TEST(LabelingTest, LabelIsSmallerEndMarkedId) {
  AssemblerOptions options = TestOptions();
  AssemblyGraph graph = GraphFrom({"AGGCTGCAACTCATCGACTCTATGT"}, options);
  LabelingResult result =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  // The LR label of a path is one of its member ids (the smaller end).
  std::unordered_set<uint64_t> ids;
  graph.ForEach([&](const AsmNode& node) { ids.insert(node.id); });
  for (const auto& [id, label] : result.labels) {
    EXPECT_TRUE(ids.count(label) == 1) << label;
  }
}

}  // namespace
}  // namespace ppa
