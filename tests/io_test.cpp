// Tests for the sequence I/O subsystem: FastxReader (FASTA/FASTQ, plain
// and gzip), ReadStream batching/backpressure plumbing, the FASTA writers,
// and the simulated-dataset FASTQ export round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/dbg_construction.h"
#include "io/fasta_writer.h"
#include "io/fastx.h"
#include "io/read_stream.h"
#include "sim/datasets.h"
#include "sim/fastq_export.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

#if defined(PPA_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace ppa {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Read> Drain(ReadSource& source) {
  std::vector<Read> reads;
  Read read;
  while (source.Next(&read)) reads.push_back(read);
  return reads;
}

TEST(FastxReaderTest, ParsesFastqFile) {
  const std::string path = TempPath("basic.fastq");
  WriteFile(path,
            "@r1 first\nACGT\n+\nIIII\n"
            "@r2\nGGGTTT\n+r2\nIIIIII\n"
            "\n");  // trailing blank line tolerated
  FastxReader reader(path);
  std::vector<Read> reads = Drain(reader);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reader.format(), FastxFormat::kFastq);
  EXPECT_EQ(reads[0].name, "r1 first");
  EXPECT_EQ(reads[0].bases, "ACGT");
  EXPECT_EQ(reads[0].quals, "IIII");
  EXPECT_EQ(reads[1].name, "r2");
  EXPECT_EQ(reads[1].bases, "GGGTTT");
}

TEST(FastxReaderTest, ParsesMultiLineFastaWithCrlf) {
  const std::string path = TempPath("multi.fasta");
  WriteFile(path, ">s1 desc\r\nACGT\r\nACGT\r\n>s2\nTTTT\n");
  FastxReader reader(path);
  std::vector<Read> reads = Drain(reader);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reader.format(), FastxFormat::kFasta);
  EXPECT_EQ(reads[0].name, "s1 desc");
  EXPECT_EQ(reads[0].bases, "ACGTACGT");
  EXPECT_TRUE(reads[0].quals.empty());
  EXPECT_EQ(reads[1].bases, "TTTT");
}

TEST(FastxReaderTest, EmptyFileYieldsNoReads) {
  const std::string path = TempPath("empty.fastq");
  WriteFile(path, "");
  FastxReader reader(path);
  EXPECT_TRUE(Drain(reader).empty());
  EXPECT_EQ(reader.format(), FastxFormat::kUnknown);
}

TEST(FastxReaderTest, MatchesInMemoryParserOnSimulatedReads) {
  GenomeConfig genome_config;
  genome_config.length = 2000;
  genome_config.seed = 5;
  ReadSimConfig sim_config;
  sim_config.coverage = 5.0;
  std::vector<Read> reads =
      SimulateReads(GenerateGenome(genome_config), sim_config);
  const std::string path = TempPath("sim.fastq");
  WriteFile(path, WriteFastq(reads));
  std::vector<Read> expected = ParseFastq(ReadFile(path));
  FastxReader reader(path);
  std::vector<Read> actual = Drain(reader);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].name, expected[i].name);
    EXPECT_EQ(actual[i].bases, expected[i].bases);
    EXPECT_EQ(actual[i].quals, expected[i].quals);
  }
}

// A zero-length read is a legal FASTQ record: empty sequence and quality
// lines are record content, not whitespace. The old parser skipped them as
// blanks and mis-assembled the following record.
TEST(FastxReaderTest, ZeroLengthFastqRecordParses) {
  const std::string path = TempPath("zero_len.fastq");
  WriteFile(path,
            "@r1\n\n+\n\n"
            "@r2\nACGT\n+\nIIII\n");
  FastxReader reader(path);
  std::vector<Read> reads = Drain(reader);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_TRUE(reads[0].bases.empty());
  EXPECT_TRUE(reads[0].quals.empty());
  EXPECT_EQ(reads[1].name, "r2");
  EXPECT_EQ(reads[1].bases, "ACGT");
}

TEST(FastxReaderTest, BlankLinesBetweenFastqRecordsAreSkipped) {
  const std::string path = TempPath("blanks_between.fastq");
  WriteFile(path,
            "\n\n@r1\nAC\n+\nII\n"
            "\n\n\n@r2\nGT\n+\nII\n\n");
  FastxReader reader(path);
  std::vector<Read> reads = Drain(reader);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].bases, "AC");
  EXPECT_EQ(reads[1].bases, "GT");
}

// Malformed FASTQ aborts with the offending line number in the diagnostic —
// attributed to the line inside the record, not wherever a blank-skipping
// scan happened to stop.
using FastxReaderDeathTest = ::testing::Test;

TEST(FastxReaderDeathTest, BlankSeparatorLineNamesItsLine) {
  const std::string path = TempPath("blank_sep.fastq");
  WriteFile(path, "@r1\nACGT\n\nIIII\n");
  auto parse = [&] {
    FastxReader reader(path);
    Read read;
    while (reader.Next(&read)) {
    }
  };
  EXPECT_DEATH(parse(),
               ":3: malformed FASTQ record: expected '\\+' separator, got a "
               "blank line \\(record at line 1\\)");
}

TEST(FastxReaderDeathTest, TruncationAfterBlanksAttributesCorrectLines) {
  // Two leading blank lines shift the record to line 3; the missing quality
  // line is reported at line 6 and the record anchored at line 3.
  const std::string path = TempPath("truncated.fastq");
  WriteFile(path, "\n\n@r1\nACGT\n+\n");
  auto parse = [&] {
    FastxReader reader(path);
    Read read;
    while (reader.Next(&read)) {
    }
  };
  EXPECT_DEATH(parse(),
               ":6: truncated FASTQ record: missing quality line "
               "\\(record at line 3\\)");
}

TEST(FastxReaderDeathTest, QualityLengthMismatchIsFatal) {
  const std::string path = TempPath("qual_mismatch.fastq");
  WriteFile(path, "@r1\nACGT\n+\nIII\n");
  auto parse = [&] {
    FastxReader reader(path);
    Read read;
    while (reader.Next(&read)) {
    }
  };
  EXPECT_DEATH(parse(), "quality length \\(3\\) does not match sequence "
                        "length \\(4\\)");
}

TEST(FastxReaderDeathTest, UnreadableInputDiesWithDiagnostic) {
  // A directory opens but every read fails; the reader must die with a
  // FASTX diagnostic (open or read error), never parse garbage.
  const std::string dir = TempPath("a_directory");
  std::filesystem::create_directory(dir);
  auto parse = [&] {
    FastxReader reader(dir);
    Read read;
    while (reader.Next(&read)) {
    }
  };
  EXPECT_DEATH(parse(), "FASTX error");
}

#if defined(PPA_HAVE_ZLIB)
TEST(FastxReaderTest, ReadsGzipCompressedFastq) {
  const std::string text = "@r1\nACGTACGT\n+\nIIIIIIII\n@r2\nGGTT\n+\nIIII\n";
  const std::string path = TempPath("reads.fastq.gz");
  gzFile gz = gzopen(path.c_str(), "wb");
  ASSERT_NE(gz, nullptr);
  ASSERT_EQ(gzwrite(gz, text.data(), static_cast<unsigned>(text.size())),
            static_cast<int>(text.size()));
  gzclose(gz);
  FastxReader reader(path);
  std::vector<Read> reads = Drain(reader);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].bases, "ACGTACGT");
  EXPECT_EQ(reads[1].name, "r2");
}
#endif

TEST(MultiFileReadSourceTest, ConcatenatesFiles) {
  const std::string a = TempPath("a.fastq");
  const std::string b = TempPath("b.fasta");
  WriteFile(a, "@r1\nAAAA\n+\nIIII\n");
  WriteFile(b, ">r2\nCCCC\n");
  std::unique_ptr<ReadSource> source = OpenFastxFiles({a, b});
  std::vector<Read> reads = Drain(*source);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[1].name, "r2");
  EXPECT_EQ(reads[1].bases, "CCCC");
}

std::vector<Read> NumberedReads(size_t n, size_t len) {
  std::vector<Read> reads(n);
  for (size_t i = 0; i < n; ++i) {
    reads[i].name = "r" + std::to_string(i);
    reads[i].bases.assign(len, "ACGT"[i % 4]);
  }
  return reads;
}

TEST(ReadStreamTest, BatchesRespectReadAndBaseLimits) {
  ReadStreamConfig config;
  config.batch_reads = 3;
  config.batch_bases = 1 << 20;
  ReadStream stream(std::make_unique<VectorReadSource>(NumberedReads(10, 8)),
                    config);
  size_t batches = 0, reads = 0;
  ReadBatch batch;
  while (stream.Next(&batch)) {
    ++batches;
    EXPECT_LE(batch.reads.size(), 3u);
    reads += batch.reads.size();
  }
  EXPECT_EQ(batches, 4u);  // 3+3+3+1
  EXPECT_EQ(reads, 10u);
  EXPECT_EQ(stream.total_reads(), 10u);
  EXPECT_EQ(stream.total_bases(), 80u);
  EXPECT_EQ(stream.total_batches(), 4u);

  // Base-limited batching: every read alone exceeds the base target.
  ReadStreamConfig small;
  small.batch_reads = 100;
  small.batch_bases = 4;
  ReadStream stream2(std::make_unique<VectorReadSource>(NumberedReads(5, 8)),
                     small);
  size_t batches2 = 0;
  while (stream2.Next(&batch)) ++batches2;
  EXPECT_EQ(batches2, 5u);
}

TEST(ReadStreamTest, ForEachBatchConsumesEveryReadExactlyOnce) {
  const size_t n = 257;
  ReadStreamConfig config;
  config.batch_reads = 16;
  config.queue_depth = 2;
  ReadStream stream(std::make_unique<VectorReadSource>(NumberedReads(n, 4)),
                    config);
  std::mutex mu;
  std::multiset<std::string> seen;
  stream.ForEachBatch(4, [&](ReadBatch& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Read& r : batch.reads) seen.insert(r.name);
  });
  ASSERT_EQ(seen.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen.count("r" + std::to_string(i)), 1u) << i;
  }
}

TEST(ReadStreamTest, AbandonedStreamShutsDownCleanly) {
  // Destroy the stream without draining: the reader thread must unblock.
  ReadStreamConfig config;
  config.batch_reads = 1;
  config.queue_depth = 1;
  ReadStream stream(std::make_unique<VectorReadSource>(NumberedReads(64, 4)),
                    config);
  ReadBatch batch;
  ASSERT_TRUE(stream.Next(&batch));
}

TEST(ReadStreamTest, AbandonedWithoutAnyConsumptionJoinsReader) {
  // The reader blocks on a full queue before the consumer ever calls
  // Next(); destruction alone must wake and join it. Run it many times —
  // the reader may be parked in emit's not_full wait, mid-parse, or
  // already done when the destructor fires.
  for (int round = 0; round < 20; ++round) {
    ReadStreamConfig config;
    config.batch_reads = 1;
    config.queue_depth = 1;
    ReadStream stream(
        std::make_unique<VectorReadSource>(NumberedReads(128, 16)), config);
    // No Next() at all.
  }
}

TEST(ReadStreamTest, AbandonAfterReaderFinishedJoinsReader) {
  // Tiny source: the reader finishes (done_) long before destruction; the
  // destructor's stop signal must not deadlock against an exited reader.
  ReadStream stream(std::make_unique<VectorReadSource>(NumberedReads(2, 4)));
  ReadBatch batch;
  ASSERT_TRUE(stream.Next(&batch));
  // Remaining batch left unconsumed.
}

TEST(FastaWriterTest, ContigsRoundTripThroughParser) {
  std::vector<ContigRecord> contigs(2);
  contigs[0].id = 7;
  contigs[0].seq = PackedSequence::FromString(std::string(170, 'A') + "CGT");
  contigs[0].coverage = 12;
  contigs[1].id = 9;
  contigs[1].seq = PackedSequence::FromString("ACGTACGT");
  contigs[1].circular = true;
  std::ostringstream out;
  WriteContigsFasta(out, contigs);
  const std::string fasta = out.str();
  std::vector<Read> parsed = ParseFasta(fasta);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "contig_7 length=173 coverage=12 circular=0");
  EXPECT_EQ(parsed[0].bases, contigs[0].seq.ToString());
  EXPECT_EQ(parsed[1].name, "contig_9 length=8 coverage=0 circular=1");
  EXPECT_EQ(parsed[1].bases, "ACGTACGT");
  // 80-column wrapping: the 173 bp contig occupies 3 sequence lines.
  EXPECT_EQ(std::count(fasta.begin(), fasta.end(), '\n'), 2 + 3 + 1);
}

TEST(FastaWriterTest, DbgDumpHasOneRecordPerVertex) {
  GenomeConfig genome_config;
  genome_config.length = 1500;
  genome_config.seed = 9;
  ReadSimConfig sim_config;
  sim_config.coverage = 8.0;
  sim_config.error_rate = 0.0;
  sim_config.n_rate = 0.0;
  std::vector<Read> reads =
      SimulateReads(GenerateGenome(genome_config), sim_config);
  AssemblerOptions options;
  options.k = 21;
  options.coverage_threshold = 1;
  options.num_workers = 4;
  options.num_threads = 2;
  DbgResult dbg = BuildDbg(reads, options);
  std::ostringstream out;
  WriteDbgFasta(out, dbg.graph);
  std::vector<Read> parsed = ParseFasta(out.str());
  EXPECT_EQ(parsed.size(), dbg.graph.live_size());
  for (const Read& r : parsed) {
    EXPECT_EQ(r.name.rfind("kmer_", 0), 0u);
    EXPECT_EQ(r.bases.size(), 21u);
  }
}

TEST(FastqExportTest, SimulatedDatasetRoundTripsExactly) {
  Dataset dataset = MakeDataset(DatasetId::kHc2, 0.01);
  ASSERT_FALSE(dataset.reads.empty());
  const std::string prefix = TempPath("hc2_export");
  std::vector<std::string> written = ExportDatasetFastq(dataset, prefix);
  ASSERT_EQ(written.size(), 2u);  // reads + reference

  FastxReader reader(written[0]);
  std::vector<Read> parsed = Drain(reader);
  ASSERT_EQ(parsed.size(), dataset.reads.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    const Read expected = NormalizedFastqRead(dataset.reads[i]);
    EXPECT_EQ(parsed[i].name, expected.name) << i;
    EXPECT_EQ(parsed[i].bases, expected.bases) << i;
    EXPECT_EQ(parsed[i].quals, expected.quals) << i;
  }

  FastxReader ref_reader(written[1]);
  std::vector<Read> ref = Drain(ref_reader);
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_EQ(ref[0].bases, dataset.reference.ToString());
}

}  // namespace
}  // namespace ppa
