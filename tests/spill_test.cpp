// Tests for the external spill subsystem (spill/spill.h) and its two
// consumers. The headline properties:
//
//   * readback corruption — truncated file, bad magic, CRC mismatch, a
//     record length past EOF — fails with a diagnostic, never a silently
//     short record stream;
//   * the temp directory is removed on success AND on early-destruction
//     paths;
//   * always-spill and auto-spill runs are bit-identical to never-spill
//     across a k x shards x threads grid, for counts and for whole-pipeline
//     contigs, with peak resident chunk bytes held under the budget.
#include "spill/spill.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/assembler.h"
#include "dbg/kmer_counter.h"
#include "io/fastx.h"
#include "io/read_stream.h"
#include "pregel/mapreduce.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"
#include "util/crc32.h"

namespace ppa {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC32 + MemoryBudget
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownAnswers) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Extension across discontiguous buffers equals one pass.
  const uint32_t head = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, head), 0xCBF43926u);
}

TEST(MemoryBudgetTest, TracksResidentAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.budget_bytes(), 1000u);
  budget.Charge(400);
  EXPECT_FALSE(budget.WouldExceed(600));
  EXPECT_TRUE(budget.WouldExceed(601));
  budget.Charge(500);
  EXPECT_EQ(budget.resident_bytes(), 900u);
  budget.Release(600);
  EXPECT_EQ(budget.resident_bytes(), 300u);
  EXPECT_EQ(budget.peak_resident_bytes(), 900u);
  budget.ChargePinned(100);
  EXPECT_EQ(budget.resident_bytes(), 400u);
  // Atomic check-and-charge: admits only what fits, charges nothing on
  // refusal.
  EXPECT_TRUE(budget.TryChargePinned(600));
  EXPECT_FALSE(budget.TryChargePinned(1));
  EXPECT_EQ(budget.resident_bytes(), 1000u);
  budget.ReleasePinned(600);
  budget.ReleasePinned(100);
  budget.Release(300);
  EXPECT_EQ(budget.resident_bytes(), 0u);
  EXPECT_EQ(budget.peak_resident_bytes(), 1000u);
}

TEST(MemoryBudgetTest, UnlimitedNeverExceeds) {
  MemoryBudget budget(0);
  budget.Charge(1 << 30);
  EXPECT_FALSE(budget.WouldExceed(1 << 30));
  budget.ChargeBlocking(1 << 30);  // must not wait with no budget
  EXPECT_EQ(budget.peak_resident_bytes(), 2u << 30);
}

// ---------------------------------------------------------------------------
// SpillManager / SpillReader round trips
// ---------------------------------------------------------------------------

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) out.push_back(static_cast<uint8_t>(v));
  return out;
}

TEST(SpillManagerTest, RoundTripsRecordsInWriteOrder) {
  std::string dir;
  {
    SpillManager manager;
    dir = manager.dir();
    EXPECT_TRUE(fs::is_directory(dir));
    const uint32_t a = manager.NewFile("shard-a");
    const uint32_t b = manager.NewFile("shard b/../evil");  // sanitized
    manager.Append(a, Bytes({1, 2, 3}));
    manager.Append(b, Bytes({9}));
    manager.Append(a, Bytes({}));  // empty payloads are legal records
    manager.Append(a, Bytes({4, 5}));
    ASSERT_TRUE(manager.Sync()) << manager.error();
    EXPECT_EQ(manager.spilled_chunks(), 4u);
    EXPECT_EQ(manager.spilled_bytes(), 6u);
    EXPECT_EQ(manager.files_written(), 2u);
    // The sanitized path stays inside the spill directory.
    EXPECT_EQ(fs::path(manager.FilePath(b)).parent_path(), fs::path(dir));

    SpillReader reader = manager.OpenReader(a);
    std::vector<uint8_t> payload;
    ASSERT_TRUE(reader.Next(&payload));
    EXPECT_EQ(payload, Bytes({1, 2, 3}));
    ASSERT_TRUE(reader.Next(&payload));
    EXPECT_TRUE(payload.empty());
    ASSERT_TRUE(reader.Next(&payload));
    EXPECT_EQ(payload, Bytes({4, 5}));
    EXPECT_FALSE(reader.Next(&payload));
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.records(), 3u);
    EXPECT_EQ(reader.bytes_read(), 5u);
  }
  // Success path: the directory is gone with the manager.
  EXPECT_FALSE(fs::exists(dir));
}

TEST(SpillManagerTest, PerFileOrderHoldsAcrossWriterPool) {
  SpillManager::Config config;
  config.writer_threads = 3;
  SpillManager manager(config);
  std::vector<uint32_t> files;
  for (int f = 0; f < 5; ++f) {
    files.push_back(manager.NewFile("f" + std::to_string(f)));
  }
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    for (uint32_t file : files) {
      manager.Append(file, Bytes({i & 0xFF, (i >> 8) & 0xFF}));
    }
  }
  ASSERT_TRUE(manager.Sync()) << manager.error();
  for (uint32_t file : files) {
    SpillReader reader = manager.OpenReader(file);
    std::vector<uint8_t> payload;
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(reader.Next(&payload)) << reader.error();
      EXPECT_EQ(payload, Bytes({i & 0xFF, (i >> 8) & 0xFF}));
    }
    EXPECT_FALSE(reader.Next(&payload));
    EXPECT_TRUE(reader.ok()) << reader.error();
  }
}

TEST(SpillManagerTest, DirRemovedOnEarlyDestructionWithQueuedWrites) {
  std::string dir;
  int done_calls = 0;
  {
    SpillManager manager;
    dir = manager.dir();
    const uint32_t f = manager.NewFile("abandoned");
    for (int i = 0; i < 64; ++i) {
      manager.Append(f, std::vector<uint8_t>(4096, 0x5A),
                     [&done_calls] { ++done_calls; });
    }
    // No Sync: destruction must drain (so every done callback runs) and
    // then remove the directory.
  }
  EXPECT_EQ(done_calls, 64);
  EXPECT_FALSE(fs::exists(dir));
}

TEST(SpillManagerTest, MakeSpillContextHonorsMode) {
  EXPECT_EQ(MakeSpillContext(SpillMode::kNever, "", 123), nullptr);
  std::unique_ptr<SpillContext> context =
      MakeSpillContext(SpillMode::kAuto, "", 123);
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->mode, SpillMode::kAuto);
  EXPECT_EQ(context->budget.budget_bytes(), 123u);
  EXPECT_TRUE(fs::is_directory(context->manager.dir()));
}

// ---------------------------------------------------------------------------
// Readback corruption: every damage mode is a diagnostic, never a silently
// short stream.
// ---------------------------------------------------------------------------

/// Writes a one-file spill store with three records and returns the file's
/// path inside `dir` (copied out so the manager can be destroyed).
std::string WriteCorruptibleFile(const std::string& copy_to) {
  SpillManager manager;
  const uint32_t f = manager.NewFile("victim");
  manager.Append(f, Bytes({10, 11, 12, 13}));
  manager.Append(f, Bytes({20, 21}));
  manager.Append(f, Bytes({30, 31, 32}));
  EXPECT_TRUE(manager.Sync());
  fs::copy_file(manager.FilePath(f), copy_to,
                fs::copy_options::overwrite_existing);
  return copy_to;
}

std::string CorruptionTempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Reads records until Next() stops; returns how many were delivered.
uint64_t DrainReader(SpillReader& reader) {
  std::vector<uint8_t> payload;
  uint64_t n = 0;
  while (reader.Next(&payload)) ++n;
  return n;
}

TEST(SpillReaderTest, MissingFileIsEmptyAndOk) {
  SpillReader reader(CorruptionTempPath("never_written.spill"));
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_TRUE(reader.ok());
}

TEST(SpillReaderTest, BadMagicFails) {
  const std::string path =
      WriteCorruptibleFile(CorruptionTempPath("bad_magic.spill"));
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[0] ^= 0xFF;
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("bad magic"), std::string::npos)
      << reader.error();
}

TEST(SpillReaderTest, HeaderShorterThanMagicFails) {
  const std::string path = CorruptionTempPath("stub.spill");
  WriteAll(path, Bytes({'P', 'P', 'A'}));
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("bad magic"), std::string::npos);
}

TEST(SpillReaderTest, TruncatedFileFailsInsteadOfShortStream) {
  const std::string path =
      WriteCorruptibleFile(CorruptionTempPath("truncated.spill"));
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 2);  // cut into the last record's payload
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 2u);  // the two intact records
  EXPECT_FALSE(reader.ok()) << "a truncated file must not read as short";
  EXPECT_NE(reader.error().find("past end of file"), std::string::npos)
      << reader.error();
}

TEST(SpillReaderTest, CrcMismatchFails) {
  const std::string path =
      WriteCorruptibleFile(CorruptionTempPath("crc.spill"));
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.back() ^= 0x01;  // flip a payload bit of the last record
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 2u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("CRC mismatch"), std::string::npos)
      << reader.error();
}

TEST(SpillReaderTest, RecordLengthPastEofFails) {
  const std::string path = CorruptionTempPath("huge_len.spill");
  std::vector<uint8_t> bytes(SpillReader::kMagic,
                             SpillReader::kMagic + 8);
  // Varint 0xFF 0xFF 0x7F = 2097151 bytes claimed, none present.
  bytes.push_back(0xFF);
  bytes.push_back(0xFF);
  bytes.push_back(0x7F);
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("past end of file"), std::string::npos)
      << reader.error();
}

TEST(SpillReaderTest, NearMaxRecordLengthFailsWithoutOverflow) {
  // A length varint decoding to 2^64-1: the naive `4 + length > remaining`
  // bound check would wrap and admit it, then crash in resize(). It must
  // be the same past-EOF diagnostic as any other oversized length.
  const std::string path = CorruptionTempPath("wrap_len.spill");
  std::vector<uint8_t> bytes(SpillReader::kMagic,
                             SpillReader::kMagic + 8);
  for (int i = 0; i < 9; ++i) bytes.push_back(0xFF);
  bytes.push_back(0x01);  // varint(0xFFFFFFFFFFFFFFFF)
  bytes.push_back(0x00);  // a stray byte so remaining > 0
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("past end of file"), std::string::npos)
      << reader.error();
}

// Fuzz-ish sweep: every single-bit flip anywhere in a valid spill file —
// magic, length varints, CRCs, payloads — must surface as a failed reader,
// never a clean stream with altered content (CRC-32 catches any single-bit
// damage in a record; a damaged length misframes into a CRC or EOF error).
TEST(SpillReaderTest, EverySingleBitFlipIsRejected) {
  const std::string path =
      WriteCorruptibleFile(CorruptionTempPath("bitflip.spill"));
  const std::vector<uint8_t> good = ReadAll(path);
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = good;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      WriteAll(path, mutated);
      SpillReader reader(path);
      DrainReader(reader);
      EXPECT_FALSE(reader.ok())
          << "byte " << i << " bit " << bit << " read back as a clean file";
      EXPECT_FALSE(reader.error().empty()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(SpillReaderTest, TruncatedLengthVarintFails) {
  const std::string path = CorruptionTempPath("bad_varint.spill");
  std::vector<uint8_t> bytes(SpillReader::kMagic,
                             SpillReader::kMagic + 8);
  bytes.push_back(0x80);  // continuation bit set, then EOF
  WriteAll(path, bytes);
  SpillReader reader(path);
  EXPECT_EQ(DrainReader(reader), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated record length"),
            std::string::npos)
      << reader.error();
}

// ---------------------------------------------------------------------------
// CounterSession equivalence: always/auto spill vs the in-memory oracle.
// ---------------------------------------------------------------------------

using Pair = std::pair<uint64_t, uint32_t>;

std::vector<std::vector<Pair>> SortedPartitions(const MerCounts& counts) {
  std::vector<std::vector<Pair>> out;
  out.reserve(counts.size());
  for (const auto& part : counts) {
    std::vector<Pair> sorted(part.begin(), part.end());
    std::sort(sorted.begin(), sorted.end());
    out.push_back(std::move(sorted));
  }
  return out;
}

std::vector<Read> SimulatedReads(uint64_t genome_length, double coverage,
                                 uint64_t seed) {
  GenomeConfig genome_config;
  genome_config.length = genome_length;
  genome_config.seed = seed;
  PackedSequence reference = GenerateGenome(genome_config);
  ReadSimConfig read_config;
  read_config.coverage = coverage;
  read_config.error_rate = 0.01;
  read_config.seed = seed + 1;
  return SimulateReads(reference, read_config);
}

MerCounts RunSession(const std::vector<Read>& reads, KmerCountConfig config,
                     SpillContext* spill, KmerCountStats* stats) {
  config.spill = spill;
  CounterSession session(config);
  constexpr size_t kBatch = 64;
  for (size_t begin = 0; begin < reads.size(); begin += kBatch) {
    session.AddBatch(reads.data() + begin,
                     std::min(kBatch, reads.size() - begin));
  }
  return session.Finish(stats);
}

TEST(CounterSessionSpillTest, AlwaysAndAutoMatchNeverAcrossGrid) {
  const std::vector<Read> reads = SimulatedReads(15000, 10.0, 7);
  constexpr uint64_t kBudget = 128 << 10;
  for (int k : {15, 31}) {
    for (uint32_t shards : {1u, 8u}) {
      for (unsigned threads : {1u, 4u}) {
        KmerCountConfig config;
        config.mer_length = k;
        config.num_workers = 4;
        config.coverage_threshold = 2;
        config.num_shards = shards;
        config.num_threads = threads;
        KmerCountStats never_stats;
        const auto expected = SortedPartitions(
            RunSession(reads, config, nullptr, &never_stats));
        EXPECT_EQ(never_stats.spilled_chunks, 0u);
        EXPECT_EQ(never_stats.spill_files, 0u);

        for (SpillMode mode : {SpillMode::kAlways, SpillMode::kAuto}) {
          std::unique_ptr<SpillContext> context =
              MakeSpillContext(mode, "", kBudget);
          KmerCountStats stats;
          const auto actual = SortedPartitions(
              RunSession(reads, config, context.get(), &stats));
          const std::string label =
              std::string(SpillModeName(mode)) + " k=" + std::to_string(k) +
              " shards=" + std::to_string(shards) +
              " threads=" + std::to_string(threads);
          EXPECT_EQ(actual, expected) << label;
          EXPECT_EQ(stats.total_windows, never_stats.total_windows) << label;
          EXPECT_EQ(stats.distinct_mers, never_stats.distinct_mers) << label;
          // Readback replayed exactly what was spilled.
          EXPECT_EQ(stats.readback_chunks, stats.spilled_chunks) << label;
          EXPECT_EQ(stats.readback_bytes, stats.spilled_bytes) << label;
          // The budget caps the session's queued-byte bound, and the bound
          // held (so resident chunk bytes never exceeded the budget).
          EXPECT_LE(stats.queue_bound_bytes, kBudget) << label;
          EXPECT_LE(stats.peak_queued_bytes, stats.queue_bound_bytes)
              << label;
          if (mode == SpillMode::kAlways) {
            EXPECT_GT(stats.spilled_chunks, 0u) << label;
            EXPECT_GT(stats.spill_files, 0u) << label;
            EXPECT_LE(stats.spill_files, stats.shards) << label;
            EXPECT_LE(context->budget.peak_resident_bytes(), kBudget)
                << label;
          }
        }
      }
    }
  }
}

// Abandoning a session without Finish must not leak writer callbacks or
// the temp directory (the early-Finish lifecycle satellite).
TEST(CounterSessionSpillTest, AbandonedSessionCleansUp) {
  const std::vector<Read> reads = SimulatedReads(8000, 8.0, 11);
  std::string dir;
  {
    std::unique_ptr<SpillContext> context =
        MakeSpillContext(SpillMode::kAlways, "", 64 << 10);
    dir = context->manager.dir();
    KmerCountConfig config;
    config.mer_length = 31;
    config.num_workers = 4;
    config.num_threads = 2;
    config.spill = context.get();
    CounterSession session(config);
    session.AddBatch(reads);
    // No Finish: the session joins its threads and settles the writer
    // callbacks; the context removes the directory.
  }
  EXPECT_FALSE(fs::exists(dir));
}

// ---------------------------------------------------------------------------
// Shuffle-engine spill equivalence.
// ---------------------------------------------------------------------------

/// A shuffle workload with enough pairs to seal many chunks: key = value
/// bucket, reduce = ordered concatenation marker (order-sensitive, so any
/// readback misordering changes the output).
Partitioned<std::pair<uint64_t, uint64_t>> RunSumJob(SpillContext* spill,
                                                     ShuffleStrategy strategy,
                                                     RunStats* stats) {
  constexpr uint32_t kWorkers = 8;
  std::vector<uint64_t> data(40000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i;
  Partitioned<uint64_t> input = Scatter(data, kWorkers);

  auto map_fn = [](const uint64_t& x, auto& emitter) {
    emitter.Emit(x % 1024, x);
  };
  auto reduce_fn = [](const uint64_t& key, std::span<uint64_t> group,
                      std::vector<std::pair<uint64_t, uint64_t>>& out) {
    // Order-sensitive mix: misordered values change the result.
    uint64_t acc = 0;
    for (uint64_t v : group) acc = acc * 1000003 + v;
    out.emplace_back(key, acc);
  };

  MapReduceConfig config;
  config.num_workers = kWorkers;
  config.num_threads = 4;
  config.shuffle_strategy = strategy;
  config.job_name = "spill-sum-test";
  config.spill = spill;
  return RunMapReduce<uint64_t, uint64_t, uint64_t,
                      std::pair<uint64_t, uint64_t>>(input, map_fn, reduce_fn,
                                                     config, stats);
}

TEST(ShuffleSpillTest, AlwaysAndAutoMatchNever) {
  RunStats never_stats;
  const auto expected =
      RunSumJob(nullptr, ShuffleStrategy::kHash, &never_stats);
  EXPECT_EQ(never_stats.spilled_chunks, 0u);
  for (SpillMode mode : {SpillMode::kAlways, SpillMode::kAuto}) {
    for (ShuffleStrategy strategy :
         {ShuffleStrategy::kHash, ShuffleStrategy::kSort}) {
      std::unique_ptr<SpillContext> context =
          MakeSpillContext(mode, "", 64 << 10);
      RunStats stats;
      const auto actual = RunSumJob(context.get(), strategy, &stats);
      EXPECT_EQ(actual, expected)
          << SpillModeName(mode) << "/" << ShuffleStrategyName(strategy);
      EXPECT_EQ(stats.readback_chunks, stats.spilled_chunks);
      EXPECT_EQ(stats.readback_bytes, stats.spilled_bytes);
      if (mode == SpillMode::kAlways) {
        EXPECT_GT(stats.spilled_chunks, 0u);
        EXPECT_GT(stats.spill_files, 0u);
        EXPECT_LE(context->budget.peak_resident_bytes(), 64u << 10);
      }
    }
  }
}

TEST(ShuffleSpillTest, HeapIndirectValuesStayResident) {
  // Values with heap payloads cannot round-trip through bytes; the spill
  // context must be ignored (and the job still correct) even under
  // kAlways.
  constexpr uint32_t kWorkers = 4;
  std::vector<uint64_t> data(2000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i;
  Partitioned<uint64_t> input = Scatter(data, kWorkers);
  auto map_fn = [](const uint64_t& x, auto& emitter) {
    emitter.Emit(x % 16, std::to_string(x));
  };
  auto reduce_fn = [](const uint64_t& key, std::span<std::string> group,
                      std::vector<std::pair<uint64_t, uint64_t>>& out) {
    uint64_t total = 0;
    for (const std::string& s : group) total += s.size();
    out.emplace_back(key, total);
  };
  std::unique_ptr<SpillContext> context =
      MakeSpillContext(SpillMode::kAlways, "", 1024);
  MapReduceConfig config;
  config.num_workers = kWorkers;
  config.job_name = "string-values";
  RunStats never_stats;
  const auto expected =
      RunMapReduce<uint64_t, uint64_t, std::string,
                   std::pair<uint64_t, uint64_t>>(input, map_fn, reduce_fn,
                                                  config, &never_stats);
  config.spill = context.get();
  RunStats stats;
  const auto actual =
      RunMapReduce<uint64_t, uint64_t, std::string,
                   std::pair<uint64_t, uint64_t>>(input, map_fn, reduce_fn,
                                                  config, &stats);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(stats.spilled_chunks, 0u);
  EXPECT_EQ(stats.spill_files, 0u);
}

// ---------------------------------------------------------------------------
// Whole-pipeline equivalence grid: bit-identical contigs.
// ---------------------------------------------------------------------------

std::vector<std::string> SortedContigs(const AssemblyResult& result) {
  std::vector<std::string> contigs = result.ContigStrings();
  std::sort(contigs.begin(), contigs.end());
  return contigs;
}

TEST(PipelineSpillTest, ContigsBitIdenticalAcrossGrid) {
  const std::vector<Read> reads = SimulatedReads(15000, 10.0, 23);
  constexpr uint64_t kBudget = 256 << 10;
  for (int k : {15, 31}) {
    for (uint32_t shards : {1u, 8u}) {
      for (unsigned threads : {1u, 4u}) {
        AssemblerOptions options;
        options.k = k;
        options.num_workers = 4;
        options.num_threads = threads;
        options.kmer_shards = shards;
        ReadStream never_stream(std::make_unique<VectorReadSource>(reads));
        const AssemblyResult never =
            Assembler(options).Assemble(never_stream);

        options.spill_mode = SpillMode::kAlways;
        options.memory_budget_bytes = kBudget;
        ReadStream always_stream(std::make_unique<VectorReadSource>(reads));
        const AssemblyResult always =
            Assembler(options).Assemble(always_stream);

        const std::string label = "k=" + std::to_string(k) + " shards=" +
                                  std::to_string(shards) + " threads=" +
                                  std::to_string(threads);
        EXPECT_EQ(SortedContigs(always), SortedContigs(never)) << label;
        EXPECT_EQ(always.count_stats.surviving_mers,
                  never.count_stats.surviving_mers)
            << label;
        EXPECT_EQ(always.kmer_vertices, never.kmer_vertices) << label;
        EXPECT_GT(always.count_stats.spilled_chunks, 0u) << label;
        EXPECT_GT(always.stats.total_spilled_bytes(), 0u) << label;
        EXPECT_EQ(always.stats.total_readback_bytes(),
                  always.stats.total_spilled_bytes())
            << label;
        EXPECT_EQ(always.spill_budget_bytes, kBudget) << label;
        // The acceptance bound: resident chunk bytes stayed under budget.
        EXPECT_LE(always.spill_peak_resident_bytes, kBudget) << label;
        EXPECT_EQ(never.spill_peak_resident_bytes, 0u) << label;
      }
    }
  }
}

TEST(PipelineSpillTest, AutoModeMatchesNeverOnInMemoryPipeline) {
  const std::vector<Read> reads = SimulatedReads(15000, 10.0, 31);
  AssemblerOptions options;
  options.k = 21;
  options.num_workers = 4;
  options.num_threads = 2;
  const AssemblyResult never = Assembler(options).Assemble(reads);

  options.spill_mode = SpillMode::kAuto;
  options.memory_budget_bytes = 64 << 10;  // tiny: most shuffles spill
  const AssemblyResult auto_spill = Assembler(options).Assemble(reads);
  EXPECT_EQ(SortedContigs(auto_spill), SortedContigs(never));
  EXPECT_GT(auto_spill.stats.total_spilled_bytes(), 0u);
}

}  // namespace
}  // namespace ppa
