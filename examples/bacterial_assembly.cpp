// Bacterial-scale assembly with FASTQ I/O — the end-to-end scenario the
// paper's introduction motivates: stitch sequencer output into contigs.
//
//   $ ./example_bacterial_assembly [reads.fastq]
//
// Without an argument, a bacterium-like 300 kbp genome (with a plasmid-like
// circular repeat structure) is simulated, its reads written to
// /tmp/ppa_bacterial.fastq, and the file is then assembled exactly as a
// user-provided FASTQ would be. Contigs are written as FASTA.
#include <cstdio>
#include <string>

#include "core/assembler.h"
#include "dna/read.h"
#include "quality/quast.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

int main(int argc, char** argv) {
  using namespace ppa;

  std::string fastq_path;
  PackedSequence genome;
  bool have_reference = false;

  if (argc > 1) {
    fastq_path = argv[1];
  } else {
    GenomeConfig genome_config;
    genome_config.length = 300000;
    genome_config.gc_content = 0.50;  // bacteria are often GC-rich
    genome_config.repeat_families = 5;
    genome_config.repeat_length = 500;
    genome_config.repeat_copies = 4;
    genome = GenerateGenome(genome_config);
    have_reference = true;

    ReadSimConfig read_config;
    read_config.read_length = 120;
    read_config.coverage = 40;
    read_config.error_rate = 0.008;
    read_config.n_rate = 0.001;
    std::vector<Read> simulated = SimulateReads(genome, read_config);

    fastq_path = "/tmp/ppa_bacterial.fastq";
    WriteFile(fastq_path, WriteFastq(simulated));
    std::printf("Simulated %zu reads from a %zu bp genome -> %s\n",
                simulated.size(), genome.size(), fastq_path.c_str());
  }

  // ---- Load FASTQ and assemble. -------------------------------------------
  std::vector<Read> reads = ParseFastq(ReadFile(fastq_path));
  std::printf("Loaded %zu reads from %s\n", reads.size(),
              fastq_path.c_str());

  AssemblerOptions options;
  options.k = 31;
  options.coverage_threshold = 3;  // 40x coverage affords a strict filter
  options.num_workers = 16;
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(reads);

  // ---- Write contigs as FASTA. --------------------------------------------
  std::vector<Read> fasta;
  for (const ContigRecord& c : result.contigs) {
    Read rec;
    rec.name = "contig_" + std::to_string(c.id) +
               " len=" + std::to_string(c.seq.size()) +
               " cov=" + std::to_string(c.coverage) +
               (c.circular ? " circular" : "");
    rec.bases = c.seq.ToString();
    fasta.push_back(std::move(rec));
  }
  const std::string out_path = "/tmp/ppa_bacterial_contigs.fasta";
  WriteFile(out_path, WriteFasta(fasta));
  std::printf("Wrote %zu contigs to %s\n", fasta.size(), out_path.c_str());

  QuastReport report = EvaluateAssembly(
      result.ContigStrings(), have_reference ? &genome : nullptr);
  std::printf("\nQuality report:\n%s", FormatReport(report).c_str());
  return 0;
}
