// Quickstart: assemble simulated reads and print the contigs.
//
//   $ ./example_quickstart
//
// Generates a small reference genome, simulates error-prone short reads
// from both strands, runs the default PPA-assembler workflow
// (1)(2)(3)(4)(5)(6)(2)(3), and reports the contigs with basic statistics.
#include <cstdio>

#include "core/assembler.h"
#include "quality/quast.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

int main() {
  using namespace ppa;

  // 1. A 50 kbp reference with a few repeat families.
  GenomeConfig genome_config;
  genome_config.length = 50000;
  genome_config.repeat_families = 2;
  genome_config.repeat_length = 300;
  genome_config.repeat_copies = 4;
  PackedSequence genome = GenerateGenome(genome_config);
  std::printf("Reference genome: %zu bp\n", genome.size());

  // 2. 30x coverage of 100 bp reads with 0.5%% substitution errors.
  ReadSimConfig read_config;
  read_config.read_length = 100;
  read_config.coverage = 30;
  read_config.error_rate = 0.005;
  std::vector<Read> reads = SimulateReads(genome, read_config);
  std::printf("Simulated reads:  %zu x %u bp\n", reads.size(),
              read_config.read_length);

  // 3. Assemble with the paper's default parameters.
  AssemblerOptions options;
  options.k = 31;
  options.coverage_threshold = 2;
  options.num_workers = 16;
  Assembler assembler(options);
  AssemblyResult result = assembler.Assemble(reads);

  std::printf("\nAssembly: %zu contigs from %llu k-mer vertices "
              "(%.2f s, %u Pregel/MR jobs)\n",
              result.contigs.size(),
              static_cast<unsigned long long>(result.kmer_vertices),
              result.wall_seconds,
              static_cast<unsigned>(result.stats.jobs.size()));

  // 4. Quality check against the reference.
  QuastReport report =
      EvaluateAssembly(result.ContigStrings(), &genome);
  std::printf("\nQuality report (QUAST-like):\n%s",
              FormatReport(report).c_str());

  // 5. Show the longest contig's head.
  size_t longest = 0;
  for (size_t i = 0; i < result.contigs.size(); ++i) {
    if (result.contigs[i].seq.size() >
        result.contigs[longest].seq.size()) {
      longest = i;
    }
  }
  if (!result.contigs.empty()) {
    std::string head = result.contigs[longest].seq.ToString().substr(0, 60);
    std::printf("\nLongest contig (%zu bp, coverage %u): %s...\n",
                result.contigs[longest].seq.size(),
                result.contigs[longest].coverage, head.c_str());
  }
  return 0;
}
