// Error-correction study: how tips and bubbles arise from read errors and
// what operations (4) and (5) recover — a runnable version of the paper's
// Fig. 3/Fig. 5 narrative.
//
//   $ ./example_error_correction_study
//
// Sweeps the read error rate and shows, for each rate, the DBG size, the
// number of tips and bubbles corrected, and the N50 with and without the
// error-correction operations.
#include <cstdio>
#include <vector>

#include "core/assembler.h"
#include "quality/quast.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

namespace {

struct Row {
  double error_rate;
  uint64_t dbg_vertices;
  uint64_t tips;
  uint64_t bubbles;
  uint64_t n50_with;
  uint64_t n50_without;
};

}  // namespace

int main() {
  using namespace ppa;

  GenomeConfig genome_config;
  genome_config.length = 60000;
  genome_config.repeat_families = 2;
  genome_config.repeat_length = 200;
  genome_config.repeat_copies = 3;
  PackedSequence genome = GenerateGenome(genome_config);

  std::printf("Reference: %zu bp. Sweeping read error rate.\n\n",
              genome.size());
  std::printf("%10s | %12s | %6s | %8s | %10s | %12s\n", "error rate",
              "DBG vertices", "tips", "bubbles", "N50 (corr)",
              "N50 (no corr)");
  std::printf("-----------------------------------------------------------------------\n");

  for (double error_rate : {0.0, 0.002, 0.005, 0.01, 0.02}) {
    ReadSimConfig read_config;
    read_config.read_length = 100;
    read_config.coverage = 35;
    read_config.error_rate = error_rate;
    read_config.seed = 21;
    std::vector<Read> reads = SimulateReads(genome, read_config);

    AssemblerOptions options;
    options.k = 31;
    options.coverage_threshold = 2;
    options.num_workers = 16;

    // Full workflow: (1)(2)(3)(4)(5)(6)(2)(3).
    AssemblyResult with_corr = Assembler(options).Assemble(reads);

    // Error correction disabled: workflow stops after the first merge.
    AssemblerOptions no_corr_options = options;
    no_corr_options.error_correction_rounds = 0;
    AssemblyResult no_corr = Assembler(no_corr_options).Assemble(reads);

    std::vector<uint64_t> with_lengths;
    for (const ContigRecord& c : with_corr.contigs) {
      with_lengths.push_back(c.seq.size());
    }
    std::vector<uint64_t> without_lengths;
    for (const ContigRecord& c : no_corr.contigs) {
      without_lengths.push_back(c.seq.size());
    }

    std::printf("%10.3f | %12llu | %6llu | %8llu | %10llu | %12llu\n",
                error_rate,
                static_cast<unsigned long long>(with_corr.kmer_vertices),
                static_cast<unsigned long long>(with_corr.tips_removed),
                static_cast<unsigned long long>(with_corr.bubbles_pruned),
                static_cast<unsigned long long>(ComputeN50(with_lengths)),
                static_cast<unsigned long long>(
                    ComputeN50(without_lengths)));
  }

  std::printf(
      "\nReading the table: errors inflate the DBG with false vertices;\n"
      "tip removing and bubble filtering prune them, and the second merge\n"
      "round then grows contigs through the recovered junctions.\n");
  return 0;
}
