// Extending the toolkit with a user-defined operation — the flexibility the
// paper advertises ("users may ... integrate new operations ... using
// Pregel+'s vertex-centric API").
//
//   $ ./example_custom_operation
//
// Implements *coverage-threshold pruning of bubbles* — one of the custom
// operations Sec. V suggests ("e.g., add coverage-threshold pruning to
// bubble filtering") — as a standalone Pregel job over the assembly graph,
// then plugs it into a custom workflow: (1)(2)(3)(custom)(5)(2)(3).
#include <cstdio>
#include <span>
#include <vector>

#include "core/assembler.h"
#include "core/contig_labeling.h"
#include "core/contig_merging.h"
#include "core/dbg_construction.h"
#include "core/tip_removal.h"
#include "pregel/engine.h"
#include "quality/quast.h"
#include "sim/genome.h"
#include "sim/read_simulator.h"

namespace {

using namespace ppa;

// ----- The custom operation: absolute-coverage contig pruning. -------------
// Every contig whose coverage is below an absolute floor deletes itself and
// notifies its endpoints — a 2-superstep vertex-centric program written
// exactly like the built-in operations.
struct PruneMessage {
  uint64_t contig_id = 0;
  uint8_t my_end = 0;      // Receiver's end holding the edge.
  uint8_t contig_end = 0;  // Contig's end of that edge.
};

struct CoveragePruneVertex {
  using Message = PruneMessage;

  uint64_t id = 0;
  bool halted = false;
  bool removed = false;

  bool is_contig = false;
  uint32_t coverage = 0;
  uint32_t floor = 0;
  std::vector<BiEdge> edges;
  std::vector<BiEdge> dropped;  // Applied back to the assembly graph.

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const PruneMessage> msgs) {
    if (ctx.superstep() == 0) {
      if (is_contig && coverage < floor) {
        for (const BiEdge& e : edges) {
          ctx.SendTo(e.to, PruneMessage{id, static_cast<uint8_t>(e.to_end),
                                        static_cast<uint8_t>(e.my_end)});
        }
        ctx.RemoveSelf();
        return;
      }
      ctx.VoteToHalt();
      return;
    }
    for (const PruneMessage& m : msgs) {
      for (size_t i = edges.size(); i > 0; --i) {
        const BiEdge& e = edges[i - 1];
        if (e.to == m.contig_id &&
            e.my_end == static_cast<NodeEnd>(m.my_end) &&
            e.to_end == static_cast<NodeEnd>(m.contig_end)) {
          dropped.push_back(e);
          edges.erase(edges.begin() + static_cast<long>(i - 1));
        }
      }
    }
    ctx.VoteToHalt();
  }
};

uint64_t PruneLowCoverageContigs(AssemblyGraph& graph, uint32_t floor,
                                 const AssemblerOptions& options) {
  PartitionedGraph<CoveragePruneVertex> job(graph.num_workers());
  graph.ForEach([&](const AsmNode& node) {
    CoveragePruneVertex v;
    v.id = node.id;
    v.is_contig = (node.kind == NodeKind::kContig);
    v.coverage = node.coverage;
    v.floor = floor;
    v.edges = node.edges;
    job.Add(std::move(v));
  });
  EngineConfig config;
  config.num_threads = options.num_threads;
  config.job_name = "custom-coverage-pruning";
  Engine<CoveragePruneVertex> engine(config);
  engine.Run(job);

  uint64_t pruned = 0;
  // Iterate raw partitions: ForEach skips removed vertices, which are
  // exactly the pruned ones we must mirror back.
  for (uint32_t p = 0; p < job.num_workers(); ++p) {
    for (const CoveragePruneVertex& v : job.partition(p).vertices) {
      AsmNode* node = graph.Find(v.id);
      if (node == nullptr) continue;
      if (v.removed) {
        node->removed = true;
        ++pruned;
        continue;
      }
      for (const BiEdge& e : v.dropped) {
        node->RemoveEdge(e.to, e.my_end, e.to_end);
      }
    }
  }
  graph.Compact();
  return pruned;
}

}  // namespace

int main() {
  GenomeConfig genome_config;
  genome_config.length = 80000;
  genome_config.repeat_families = 3;
  PackedSequence genome = GenerateGenome(genome_config);

  ReadSimConfig read_config;
  read_config.read_length = 100;
  read_config.coverage = 35;
  read_config.error_rate = 0.01;
  std::vector<Read> reads = SimulateReads(genome, read_config);

  AssemblerOptions options;
  options.k = 31;
  // Deliberately no (k+1)-mer coverage filtering: the custom operation
  // below does the error cleanup at contig granularity instead.
  options.coverage_threshold = 1;
  options.num_workers = 16;

  // ---- Custom workflow, operation by operation. ---------------------------
  DbgResult dbg = BuildDbg(reads, options);
  AssemblyGraph& graph = dbg.graph;
  std::printf("(1) DBG construction: %zu k-mer vertices\n",
              graph.live_size());

  std::vector<uint32_t> ordinals(options.num_workers, 0);
  LabelingResult labels =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  MergeContigs(graph, labels, options, &ordinals);
  std::printf("(2)+(3) label & merge: %zu vertices remain\n",
              graph.live_size());

  uint64_t pruned = PruneLowCoverageContigs(graph, /*floor=*/4, options);
  std::printf("(custom) coverage pruning: %llu low-coverage contigs dropped\n",
              static_cast<unsigned long long>(pruned));

  TipResult tips = RemoveTips(graph, options);
  std::printf("(5) tip removing: %llu vertices removed\n",
              static_cast<unsigned long long>(tips.vertices_removed));

  LabelingResult relabel =
      LabelContigs(graph, options, LabelingMethod::kListRanking);
  MergeContigs(graph, relabel, options, &ordinals);
  std::printf("(2)+(3) regrow: %zu vertices remain\n", graph.live_size());

  std::vector<std::string> contigs;
  for (const ContigRecord& c : CollectContigs(graph)) {
    contigs.push_back(c.seq.ToString());
  }
  QuastReport report = EvaluateAssembly(contigs, &genome);
  std::printf("\nQuality of the custom workflow:\n%s",
              FormatReport(report).c_str());
  return 0;
}
